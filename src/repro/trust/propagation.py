"""Trust propagation through recommendations (Equations 6 and 7).

When the observer's own evidence about a subject is insufficient, trust is
built from other nodes' recommendations:

* **Concatenated propagation** (Eq. 6): trust through a single third party,
  ``Tc^{A,I} = R^{A,S} · T^{S,I}``, where ``R^{A,S}`` is how much ``A`` trusts
  the recommendations issued by ``S``.
* **Multipath propagation** (Eq. 7): several recommenders are combined with
  weights proportional to the recommendation trust placed in each of them,
  ``Tm^{A,I} = Σ_i w_i · R^{A,S_i} · T^{S_i,I}`` with
  ``w_i = 1 / Σ_j R^{A,S_j}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.numerics import numpy_or_none


@dataclass(frozen=True)
class Recommendation:
    """A recommendation received from ``recommender`` about ``subject``."""

    recommender: str
    subject: str
    trust_value: float


def concatenated_trust(recommendation_trust: float, recommended_trust: float) -> float:
    """Equation 6: trust in ``I`` built through a single third party ``S``."""
    return recommendation_trust * recommended_trust


def normalised_weights(recommendation_trusts: Sequence[float]) -> List[float]:
    """Weights ``w_i = 1 / Σ_j R^{A,S_j}`` of Eq. 7 (all equal by construction).

    When every recommendation trust is zero — or negligibly small — (or the
    list is empty) the weights are zero, meaning the recommendations carry no
    information at all.
    """
    total = sum(recommendation_trusts)
    if total <= 1e-12:
        return [0.0 for _ in recommendation_trusts]
    return [1.0 / total for _ in recommendation_trusts]


def multipath_trust(
    recommendations: Sequence[Tuple[float, float]],
) -> float:
    """Equation 7: combine multiple recommendations.

    ``recommendations`` is a sequence of ``(R^{A,S_i}, T^{S_i,I})`` pairs.  The
    result is the recommendation-trust-weighted mean of the products
    ``R^{A,S_i}·T^{S_i,I}``; with no usable recommendation the function
    returns 0 (maximal uncertainty).
    """
    if not recommendations:
        return 0.0
    rec_trusts = [r for r, _ in recommendations]
    weights = normalised_weights(rec_trusts)
    return sum(w * r * t for w, (r, t) in zip(weights, recommendations))


def combine_recommendations(
    recommendations: Sequence[Recommendation],
    recommendation_trust: Mapping[str, float],
    default_recommendation_trust: float = 0.4,
) -> float:
    """Helper applying Eq. 7 to :class:`Recommendation` objects.

    ``recommendation_trust`` maps recommender id to ``R^{A,S}``; missing
    recommenders fall back to ``default_recommendation_trust``.
    """
    pairs = [
        (
            recommendation_trust.get(rec.recommender, default_recommendation_trust),
            rec.trust_value,
        )
        for rec in recommendations
    ]
    return multipath_trust(pairs)


def batch_multipath_trust(
    pairs_by_subject: Mapping[str, Sequence[Tuple[float, float]]],
) -> Dict[str, float]:
    """Equation 7 for many subjects at once.

    Equivalent to ``{s: multipath_trust(pairs) for s, pairs in ...}`` but
    evaluated column-wise over numpy arrays: pass one accumulates the
    recommendation-trust totals Σ_j R^{A,S_j} position by position, pass two
    accumulates the weighted products ``(w·R)·T`` in the same order.  Because
    both accumulations visit each subject's pairs in their original sequence
    with the scalar grouping, the results are bit-identical to the per-subject
    scalar calls; without numpy (or for narrow batches) it simply delegates.
    """
    np = numpy_or_none()
    subjects = list(pairs_by_subject)
    if np is None or len(subjects) < 16:
        return {s: multipath_trust(pairs_by_subject[s]) for s in subjects}

    lengths = [len(pairs_by_subject[s]) for s in subjects]
    max_len = max(lengths, default=0)
    if max_len == 0:
        return {s: 0.0 for s in subjects}
    rec = np.zeros((len(subjects), max_len), dtype=np.float64)
    rtv = np.zeros((len(subjects), max_len), dtype=np.float64)
    for i, subject in enumerate(subjects):
        for k, (r, t) in enumerate(pairs_by_subject[subject]):
            rec[i, k] = r
            rtv[i, k] = t
    counts = np.array(lengths, dtype=np.int64)

    # Pass 1: totals, accumulated pair by pair (same grouping as sum()).
    totals = np.zeros(len(subjects), dtype=np.float64)
    for k in range(max_len):
        mask = counts > k
        totals[mask] = totals[mask] + rec[mask, k]
    weights = np.where(totals > 1e-12, 1.0 / np.where(totals > 1e-12, totals, 1.0), 0.0)

    # Pass 2: Σ (w·R)·T with the scalar's left-to-right association.
    acc = np.zeros(len(subjects), dtype=np.float64)
    for k in range(max_len):
        mask = counts > k
        acc[mask] = acc[mask] + (weights[mask] * rec[mask, k]) * rtv[mask, k]
    return {s: float(acc[i]) if lengths[i] else 0.0 for i, s in enumerate(subjects)}


def blended_trust(
    direct_trust: float,
    propagated_trust: float,
    direct_weight: float = 0.7,
) -> float:
    """Blend first-hand and propagated trust (Property 5).

    First-hand evidence is privileged: ``direct_weight`` (default 0.7) of the
    result comes from the observer's own trust value.
    """
    if not 0.0 <= direct_weight <= 1.0:
        raise ValueError("direct_weight must be in [0, 1]")
    return direct_weight * direct_trust + (1.0 - direct_weight) * propagated_trust


def transitive_trust_chain(trust_values: Sequence[float]) -> float:
    """Trust along a chain A→S1→…→I obtained by repeated concatenation (Eq. 6).

    Because every factor is ≤ 1 in absolute value, trust can only shrink along
    the chain, which matches the intuition that longer recommendation chains
    are less reliable.
    """
    result = 1.0
    for value in trust_values:
        result = concatenated_trust(result, value)
    return result


def recommendation_matrix_trust(
    subject: str,
    recommenders: Mapping[str, Mapping[str, float]],
    recommendation_trust: Mapping[str, float],
    default_recommendation_trust: float = 0.4,
) -> float:
    """Apply Eq. 7 from a recommender→(subject→trust) matrix.

    Recommenders that do not express an opinion about ``subject`` are skipped.
    """
    pairs: List[Tuple[float, float]] = []
    for recommender, opinions in recommenders.items():
        if subject not in opinions:
            continue
        rec_trust = recommendation_trust.get(recommender, default_recommendation_trust)
        pairs.append((rec_trust, opinions[subject]))
    return multipath_trust(pairs)
