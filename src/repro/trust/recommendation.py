"""Recommendation-trust bookkeeping.

``R^{A,S}`` measures how much node ``A`` trusts the *recommendations* issued
by node ``S`` — which is distinct from how much ``A`` trusts ``S``'s routing
behaviour.  The manager below maintains these values from the outcome of past
investigations: a recommender whose answers agree with the final verdict
gains recommendation trust, one whose answers disagree loses it (faster,
keeping the defensive asymmetry of the main trust system).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RecommendationRecord:
    """Recommendation-trust state about one recommender."""

    recommender: str
    value: float
    agreements: int = 0
    disagreements: int = 0
    history: List[float] = field(default_factory=list)


class RecommendationManager:
    """Maintains ``R^{A,S}`` for every recommender ``S`` seen by owner ``A``."""

    def __init__(
        self,
        owner: str,
        default_value: float = 0.4,
        reward: float = 0.05,
        penalty: float = 0.15,
        minimum: float = 0.0,
        maximum: float = 1.0,
    ) -> None:
        if minimum >= maximum:
            raise ValueError("minimum must be strictly below maximum")
        if not minimum <= default_value <= maximum:
            raise ValueError("default_value must lie within [minimum, maximum]")
        self.owner = owner
        self.default_value = default_value
        self.reward = reward
        self.penalty = penalty
        self.minimum = minimum
        self.maximum = maximum
        self._records: Dict[str, RecommendationRecord] = {}

    # -------------------------------------------------------------- accessors
    def record_of(self, recommender: str) -> RecommendationRecord:
        """Record for ``recommender`` (created at the default value if absent)."""
        record = self._records.get(recommender)
        if record is None:
            record = RecommendationRecord(recommender=recommender, value=self.default_value)
            self._records[recommender] = record
        return record

    def recommendation_trust(self, recommender: str) -> float:
        """Current ``R^{A,S}`` (default when the recommender is unknown)."""
        record = self._records.get(recommender)
        return record.value if record else self.default_value

    def set_initial(self, recommender: str, value: float) -> None:
        """Initialise ``R^{A,S}`` explicitly (used by experiments)."""
        clamped = max(self.minimum, min(self.maximum, value))
        self._records[recommender] = RecommendationRecord(recommender=recommender, value=clamped)

    def known_recommenders(self) -> List[str]:
        """Every recommender with an explicit record."""
        return sorted(self._records)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of every recommender's current value."""
        return {name: record.value for name, record in sorted(self._records.items())}

    # ---------------------------------------------------------------- updates
    def record_agreement(self, recommender: str) -> float:
        """The recommender's answer matched the final verdict: reward it."""
        record = self.record_of(recommender)
        record.value = min(self.maximum, record.value + self.reward)
        record.agreements += 1
        record.history.append(record.value)
        return record.value

    def record_disagreement(self, recommender: str) -> float:
        """The recommender's answer contradicted the final verdict: penalise it."""
        record = self.record_of(recommender)
        record.value = max(self.minimum, record.value - self.penalty)
        record.disagreements += 1
        record.history.append(record.value)
        return record.value

    def record_outcome(self, recommender: str, agreed: Optional[bool]) -> float:
        """Convenience dispatcher; ``None`` (no answer) leaves the value unchanged."""
        if agreed is None:
            return self.recommendation_trust(recommender)
        if agreed:
            return self.record_agreement(recommender)
        return self.record_disagreement(recommender)

    def accuracy_of(self, recommender: str) -> float:
        """Fraction of past recommendations that agreed with the verdict."""
        record = self._records.get(recommender)
        if record is None:
            return 0.0
        total = record.agreements + record.disagreements
        if total == 0:
            return 0.0
        return record.agreements / total
