"""CAP-OLSR baseline (Babu et al., ICON 2008).

CAP-OLSR protects OLSR against collusion attacks with an information-theoretic
trust system: a node ``A`` that selected ``I`` as MPR asks its 1- and 2-hop
neighbours whether ``I`` actually relays its TC messages; from the returned
observations it computes the entropy-based trust of ``I`` and excludes ``I``
from its MPR set when that trust falls below a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set

from repro.trust.entropy import entropy_trust_from_probability


@dataclass
class RelayObservation:
    """One answer to "does MPR ``relay`` forward my TC messages?"."""

    observer: str
    relay: str
    relayed: bool


class CapOlsrTrust:
    """Entropy-based relay trust as used by CAP-OLSR.

    Observations are aggregated into a relaying probability per MPR (with
    Laplace smoothing); the probability is mapped to trust through the
    entropy trust function.  MPRs whose trust falls below
    ``exclusion_threshold`` are excluded.
    """

    def __init__(self, owner: str, exclusion_threshold: float = 0.0,
                 prior_positive: float = 1.0, prior_negative: float = 1.0) -> None:
        self.owner = owner
        self.exclusion_threshold = exclusion_threshold
        self.prior_positive = prior_positive
        self.prior_negative = prior_negative
        self._positive: Dict[str, int] = {}
        self._negative: Dict[str, int] = {}

    # ------------------------------------------------------------ observations
    def add_observation(self, observation: RelayObservation) -> None:
        """Record one relay observation."""
        if observation.relayed:
            self._positive[observation.relay] = self._positive.get(observation.relay, 0) + 1
        else:
            self._negative[observation.relay] = self._negative.get(observation.relay, 0) + 1

    def add_observations(self, observations: List[RelayObservation]) -> None:
        """Record many relay observations."""
        for observation in observations:
            self.add_observation(observation)

    # ----------------------------------------------------------------- queries
    def relay_probability(self, relay: str) -> float:
        """Smoothed probability that ``relay`` forwards the owner's traffic."""
        positive = self._positive.get(relay, 0)
        negative = self._negative.get(relay, 0)
        return (positive + self.prior_positive) / (
            positive + negative + self.prior_positive + self.prior_negative
        )

    def trust_of(self, relay: str) -> float:
        """Entropy-based trust of ``relay`` in ``[-1, 1]``."""
        return entropy_trust_from_probability(self.relay_probability(relay))

    def excluded_mprs(self, candidate_mprs: Set[str]) -> Set[str]:
        """MPRs whose trust is below the exclusion threshold."""
        return {m for m in candidate_mprs if self.trust_of(m) < self.exclusion_threshold}

    def filtered_mpr_set(self, candidate_mprs: Set[str]) -> Set[str]:
        """The MPR set after removing excluded relays."""
        return set(candidate_mprs) - self.excluded_mprs(candidate_mprs)

    def observation_counts(self, relay: str) -> Dict[str, int]:
        """Raw positive/negative counts for ``relay``."""
        return {
            "positive": self._positive.get(relay, 0),
            "negative": self._negative.get(relay, 0),
        }


@dataclass
class CapOlsrDetector:
    """Round-based adapter exposing the same interface as the paper's detector.

    CAP-OLSR does not weight answers by trust: every observation counts the
    same, and colluding liars directly bias the relaying probability.  This is
    the property the comparison benches highlight: with many liars CAP-OLSR's
    trust in the attacker stays higher than the paper's trust-weighted
    aggregate.
    """

    owner: str
    exclusion_threshold: float = 0.0
    trust: CapOlsrTrust = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.trust is None:
            self.trust = CapOlsrTrust(self.owner, self.exclusion_threshold)

    def process_round(self, suspect: str, answers: Mapping[str, Optional[bool]]) -> float:
        """Feed one round of answers about ``suspect``; returns its new trust.

        ``answers`` maps responder → True (relay/link confirmed), False
        (denied) or None (no answer, ignored).
        """
        for responder, answer in answers.items():
            if answer is None:
                continue
            self.trust.add_observation(
                RelayObservation(observer=responder, relay=suspect, relayed=answer)
            )
        return self.trust.trust_of(suspect)

    def classify(self, suspect: str) -> str:
        """"intruder" when the suspect's trust is below the threshold, else "well-behaving"."""
        if self.trust.trust_of(suspect) < self.exclusion_threshold:
            return "intruder"
        return "well-behaving"
