"""Baselines re-implemented from the paper's related-work section.

* :mod:`repro.baselines.watchdog` — Watchdog/Pathrater (Marti et al. 2000).
* :mod:`repro.baselines.cap_olsr` — CAP-OLSR entropy trust (Babu et al. 2008).
* :mod:`repro.baselines.beta_reputation` — Bayesian Beta reputation with
  deviation test and fading (Buchegger & Le Boudec).
* :mod:`repro.baselines.averaging` — plain report averaging (Liu et al. 2004).

Each baseline exposes a ``process_round(suspect, answers)`` adapter
(``WatchdogPathrater`` included) so the comparison benches and the scenario
campaign's ``system`` axis (:mod:`repro.experiments.campaign`) can feed all
of them the exact same investigation answers the paper's detector receives.
"""

from repro.baselines.averaging import AveragingTrustSystem, TrustReport
from repro.baselines.beta_reputation import BetaReputation, BetaReputationSystem
from repro.baselines.cap_olsr import CapOlsrDetector, CapOlsrTrust, RelayObservation
from repro.baselines.watchdog import Pathrater, Watchdog, WatchdogPathrater, WatchdogRecord

__all__ = [
    "AveragingTrustSystem",
    "BetaReputation",
    "BetaReputationSystem",
    "CapOlsrDetector",
    "CapOlsrTrust",
    "Pathrater",
    "RelayObservation",
    "TrustReport",
    "Watchdog",
    "WatchdogPathrater",
    "WatchdogRecord",
]
