"""Bayesian Beta-reputation baseline (Buchegger & Le Boudec, CONFIDANT line).

Reputation about a node is maintained as a Beta(α, β) distribution over its
probability of behaving correctly: positive observations increment α,
negative ones increment β.  Second-hand reports are merged with a deviation
test (reports too far from the current belief are rejected) and reputation
fades over time by discounting both counters, which is the "robust reputation
system" refinement of the 2004 paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Set


@dataclass
class BetaReputation:
    """Beta-distributed reputation about one subject."""

    alpha: float = 1.0
    beta: float = 1.0

    @property
    def expectation(self) -> float:
        """Expected probability of correct behaviour, E[Beta(α, β)] = α/(α+β)."""
        return self.alpha / (self.alpha + self.beta)

    @property
    def observations(self) -> float:
        """Total evidence mass beyond the uniform prior."""
        return self.alpha + self.beta - 2.0

    def update(self, positive: float = 0.0, negative: float = 0.0) -> None:
        """Add first-hand observations."""
        if positive < 0 or negative < 0:
            raise ValueError("observation counts must be non-negative")
        self.alpha += positive
        self.beta += negative

    def fade(self, factor: float) -> None:
        """Reputation fading: discount old evidence by ``factor`` in [0, 1]."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError("fading factor must be in [0, 1]")
        self.alpha = 1.0 + (self.alpha - 1.0) * factor
        self.beta = 1.0 + (self.beta - 1.0) * factor


class BetaReputationSystem:
    """Per-node reputation table with deviation-tested second-hand reports."""

    def __init__(
        self,
        owner: str,
        deviation_threshold: float = 0.5,
        second_hand_weight: float = 0.2,
        fading_factor: float = 0.98,
        misbehavior_threshold: float = 0.35,
    ) -> None:
        self.owner = owner
        self.deviation_threshold = deviation_threshold
        self.second_hand_weight = second_hand_weight
        self.fading_factor = fading_factor
        self.misbehavior_threshold = misbehavior_threshold
        self._reputation: Dict[str, BetaReputation] = {}
        self.rejected_reports = 0
        self.accepted_reports = 0

    # ---------------------------------------------------------------- updates
    def reputation_of(self, subject: str) -> BetaReputation:
        """Reputation record of ``subject`` (uniform prior when unknown)."""
        record = self._reputation.get(subject)
        if record is None:
            record = BetaReputation()
            self._reputation[subject] = record
        return record

    def first_hand(self, subject: str, positive: float = 0.0, negative: float = 0.0) -> float:
        """Add a first-hand observation and return the new expectation."""
        record = self.reputation_of(subject)
        record.update(positive=positive, negative=negative)
        return record.expectation

    def second_hand(self, subject: str, reported: BetaReputation) -> Optional[float]:
        """Merge a second-hand report after the deviation test.

        The report is rejected (returns ``None``) when its expectation deviates
        from the current belief by more than ``deviation_threshold``; otherwise
        it is merged with weight ``second_hand_weight``.
        """
        record = self.reputation_of(subject)
        if abs(reported.expectation - record.expectation) > self.deviation_threshold:
            self.rejected_reports += 1
            return None
        self.accepted_reports += 1
        record.alpha += self.second_hand_weight * (reported.alpha - 1.0)
        record.beta += self.second_hand_weight * (reported.beta - 1.0)
        return record.expectation

    def fade_all(self) -> None:
        """Apply reputation fading to every subject (one time step)."""
        for record in self._reputation.values():
            record.fade(self.fading_factor)

    # ---------------------------------------------------------------- queries
    def expectation_of(self, subject: str) -> float:
        """Expected probability that ``subject`` behaves correctly."""
        return self.reputation_of(subject).expectation

    def misbehaving_nodes(self) -> Set[str]:
        """Subjects whose expectation fell below the misbehaviour threshold."""
        return {
            subject
            for subject, record in self._reputation.items()
            if record.expectation < self.misbehavior_threshold
        }

    def classify(self, subject: str) -> str:
        """"intruder" / "well-behaving" classification of ``subject``."""
        if self.expectation_of(subject) < self.misbehavior_threshold:
            return "intruder"
        return "well-behaving"

    def process_round(self, suspect: str, answers: Mapping[str, Optional[bool]]) -> float:
        """Round-based adapter matching the paper detector's interface.

        Each responder's answer is treated as a second-hand report: a denial
        contributes a negative report about the suspect, a confirmation a
        positive one.  Reports are deviation-tested exactly as self-reports
        would be.
        """
        for _responder, answer in sorted(answers.items()):
            if answer is None:
                continue
            report = BetaReputation()
            if answer:
                report.update(positive=1.0)
            else:
                report.update(negative=1.0)
            self.second_hand(suspect, report)
        return self.expectation_of(suspect)
