"""Watchdog / Pathrater baseline (Marti et al., MobiCom 2000).

Each node overhears its neighbours' transmissions to count the packets a
relay was supposed to forward but did not.  When the miss count exceeds a
threshold the relay is flagged as a misbehaving node and the Pathrater
component down-rates (or avoids) routes through it.

This is the classic trust-free baseline the paper's related-work section
cites ([13], [14]); it detects *drop* attacks but is blind to link spoofing,
which is exactly the comparison the ablation benches document.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set


@dataclass
class WatchdogRecord:
    """Forwarding bookkeeping about one monitored relay."""

    relay: str
    expected: int = 0
    forwarded: int = 0
    missed: int = 0

    @property
    def miss_ratio(self) -> float:
        """Fraction of expected forwards that never happened."""
        if self.expected == 0:
            return 0.0
        return self.missed / self.expected


class Watchdog:
    """Per-node watchdog counting unforwarded packets."""

    def __init__(self, owner: str, miss_threshold: int = 5,
                 miss_ratio_threshold: float = 0.5) -> None:
        self.owner = owner
        self.miss_threshold = miss_threshold
        self.miss_ratio_threshold = miss_ratio_threshold
        self._records: Dict[str, WatchdogRecord] = {}

    def record_of(self, relay: str) -> WatchdogRecord:
        """Record for ``relay`` (created empty when absent)."""
        record = self._records.get(relay)
        if record is None:
            record = WatchdogRecord(relay=relay)
            self._records[relay] = record
        return record

    def expect_forward(self, relay: str) -> None:
        """A packet was handed to ``relay``; we expect to overhear its retransmission."""
        self.record_of(relay).expected += 1

    def observe_forward(self, relay: str) -> None:
        """The retransmission by ``relay`` was overheard."""
        self.record_of(relay).forwarded += 1

    def observe_miss(self, relay: str) -> None:
        """The retransmission was not overheard before the timeout."""
        self.record_of(relay).missed += 1

    def misbehaving_nodes(self) -> Set[str]:
        """Relays flagged by the watchdog."""
        flagged = set()
        for relay, record in self._records.items():
            if record.missed >= self.miss_threshold and record.miss_ratio >= self.miss_ratio_threshold:
                flagged.add(relay)
        return flagged

    def is_misbehaving(self, relay: str) -> bool:
        """Whether ``relay`` is currently flagged."""
        return relay in self.misbehaving_nodes()


class Pathrater:
    """Rates paths by the ratings of the nodes they traverse.

    Every node starts at ``neutral_rating`` and is incremented periodically
    while it behaves, decremented on negative events, and pinned to
    ``misbehaving_rating`` when the watchdog flags it.  A path's rating is the
    average of its nodes' ratings; negative-rated paths are avoided.
    """

    def __init__(
        self,
        owner: str,
        watchdog: Optional[Watchdog] = None,
        neutral_rating: float = 0.5,
        increment: float = 0.01,
        decrement: float = 0.05,
        misbehaving_rating: float = -100.0,
        maximum: float = 0.8,
    ) -> None:
        self.owner = owner
        self.watchdog = watchdog
        self.neutral_rating = neutral_rating
        self.increment = increment
        self.decrement = decrement
        self.misbehaving_rating = misbehaving_rating
        self.maximum = maximum
        self._ratings: Dict[str, float] = {}

    def rating_of(self, node: str) -> float:
        """Current rating of ``node`` (misbehaving rating when flagged)."""
        if self.watchdog is not None and self.watchdog.is_misbehaving(node):
            return self.misbehaving_rating
        return self._ratings.get(node, self.neutral_rating)

    def actively_used(self, node: str) -> None:
        """Periodic positive update for nodes on actively used paths."""
        current = self._ratings.get(node, self.neutral_rating)
        self._ratings[node] = min(self.maximum, current + self.increment)

    def negative_event(self, node: str) -> None:
        """Negative update (e.g. link breakage reported)."""
        current = self._ratings.get(node, self.neutral_rating)
        self._ratings[node] = current - self.decrement

    def path_rating(self, path: List[str]) -> float:
        """Average rating of the nodes along ``path`` (excluding the owner)."""
        nodes = [n for n in path if n != self.owner]
        if not nodes:
            return self.neutral_rating
        return sum(self.rating_of(n) for n in nodes) / len(nodes)

    def best_path(self, paths: List[List[str]]) -> Optional[List[str]]:
        """The highest-rated path, or ``None`` when every path is negative."""
        rated = [(self.path_rating(p), p) for p in paths]
        rated = [(r, p) for r, p in rated if r > 0.0]
        if not rated:
            return None
        rated.sort(key=lambda item: (-item[0], len(item[1])))
        return rated[0][1]


@dataclass
class WatchdogPathrater:
    """Convenience bundle of a watchdog and its pathrater."""

    owner: str
    watchdog: Watchdog = field(default=None)  # type: ignore[assignment]
    pathrater: Pathrater = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.watchdog is None:
            self.watchdog = Watchdog(self.owner)
        if self.pathrater is None:
            self.pathrater = Pathrater(self.owner, watchdog=self.watchdog)

    def detected_attackers(self) -> Set[str]:
        """Nodes the bundle currently classifies as misbehaving."""
        return self.watchdog.misbehaving_nodes()

    def process_round(self, suspect: str, answers: Mapping[str, Optional[bool]]) -> float:
        """Round-based adapter matching the paper detector's interface.

        A watchdog has no notion of link-verification testimony; the closest
        translation is to treat every received answer as one overheard
        forwarding opportunity of the suspect: a denial means the promised
        behaviour did not materialise (a miss), a confirmation counts as an
        observed forward, and a missing answer is no observation at all.
        Returns the suspect's score in ``[-1, 1]`` (``+1`` = every
        opportunity forwarded, ``-1`` = every opportunity missed).
        """
        for _responder, answer in sorted(answers.items()):
            if answer is None:
                continue
            self.watchdog.expect_forward(suspect)
            if answer:
                self.watchdog.observe_forward(suspect)
            else:
                self.watchdog.observe_miss(suspect)
        return self.score_of(suspect)

    def score_of(self, suspect: str) -> float:
        """Miss-ratio score of ``suspect`` mapped linearly onto ``[-1, 1]``."""
        return 1.0 - 2.0 * self.watchdog.record_of(suspect).miss_ratio

    def classify(self, suspect: str) -> str:
        """"intruder" when the watchdog flags ``suspect``, else "well-behaving"."""
        if self.watchdog.is_misbehaving(suspect):
            return "intruder"
        return "well-behaving"
