"""Report-averaging baseline (Liu et al., FTDCS 2004 style).

The simplest recommendation fusion: the trust assigned to a target is the
plain average of the reported values, optionally weighted by hop distance and
report freshness but *not* by the trust placed in the reporter.  It is the
natural "no defence against liars" strawman the paper's Eq. 8 improves upon,
and the unweighted-vote ablation of the benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional


@dataclass
class TrustReport:
    """One report about ``subject`` received from ``reporter``."""

    reporter: str
    subject: str
    value: float
    hop_distance: int = 1
    age: float = 0.0


class AveragingTrustSystem:
    """Average-of-reports trust with optional distance/freshness discounting."""

    def __init__(
        self,
        owner: str,
        distance_discount: float = 0.0,
        freshness_halflife: Optional[float] = None,
        misbehavior_threshold: float = -0.2,
    ) -> None:
        if not 0.0 <= distance_discount < 1.0:
            raise ValueError("distance_discount must be in [0, 1)")
        self.owner = owner
        self.distance_discount = distance_discount
        self.freshness_halflife = freshness_halflife
        self.misbehavior_threshold = misbehavior_threshold
        self._reports: Dict[str, List[TrustReport]] = {}

    def add_report(self, report: TrustReport) -> None:
        """Record one report."""
        if not -1.0 <= report.value <= 1.0:
            raise ValueError("report value must be in [-1, 1]")
        self._reports.setdefault(report.subject, []).append(report)

    def _weight(self, report: TrustReport) -> float:
        weight = 1.0
        if self.distance_discount:
            weight *= (1.0 - self.distance_discount) ** max(report.hop_distance - 1, 0)
        if self.freshness_halflife:
            weight *= 0.5 ** (report.age / self.freshness_halflife)
        return weight

    def trust_of(self, subject: str) -> float:
        """Weighted average of every report about ``subject`` (0 when none)."""
        reports = self._reports.get(subject, [])
        if not reports:
            return 0.0
        weights = [self._weight(r) for r in reports]
        total = sum(weights)
        if total == 0.0:
            return 0.0
        return sum(w * r.value for w, r in zip(weights, reports)) / total

    def classify(self, subject: str) -> str:
        """"intruder" / "well-behaving" classification of ``subject``."""
        if self.trust_of(subject) < self.misbehavior_threshold:
            return "intruder"
        return "well-behaving"

    def process_round(self, suspect: str, answers: Mapping[str, Optional[bool]]) -> float:
        """Round-based adapter: each answer becomes a ±1 report about the suspect."""
        for responder, answer in sorted(answers.items()):
            if answer is None:
                continue
            self.add_report(
                TrustReport(reporter=responder, subject=suspect,
                            value=1.0 if answer else -1.0)
            )
        return self.trust_of(suspect)

    def report_count(self, subject: str) -> int:
        """Number of reports recorded about ``subject``."""
        return len(self._reports.get(subject, []))
