"""Detection-quality metrics.

These metrics score a detector run against the scenario's ground truth:
classification accuracy, false positive / false negative rates, and the
convergence speed of the detection aggregate (the number of investigation
rounds the paper reports on the x-axis of its figures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.core.decision import DecisionOutcome


@dataclass
class ConfusionMatrix:
    """Binary confusion matrix over "is this node an intruder?"."""

    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0

    @property
    def total(self) -> int:
        """Total number of classified nodes."""
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def accuracy(self) -> float:
        """Fraction of correct classifications."""
        if self.total == 0:
            return 0.0
        return (self.true_positives + self.true_negatives) / self.total

    @property
    def precision(self) -> float:
        """TP / (TP + FP)."""
        denominator = self.true_positives + self.false_positives
        if denominator == 0:
            return 0.0
        return self.true_positives / denominator

    @property
    def recall(self) -> float:
        """Detection rate: TP / (TP + FN)."""
        denominator = self.true_positives + self.false_negatives
        if denominator == 0:
            return 0.0
        return self.true_positives / denominator

    @property
    def false_positive_rate(self) -> float:
        """FP / (FP + TN)."""
        denominator = self.false_positives + self.true_negatives
        if denominator == 0:
            return 0.0
        return self.false_positives / denominator

    @property
    def f1_score(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        if p + r == 0.0:
            return 0.0
        return 2.0 * p * r / (p + r)


def classification_matrix(
    verdicts: Mapping[str, DecisionOutcome],
    true_intruders: Set[str],
    treat_unrecognized_as_negative: bool = True,
) -> ConfusionMatrix:
    """Score the per-node verdicts against the ground-truth intruder set.

    ``unrecognized`` verdicts count as "not flagged" by default (the
    conservative reading the paper adopts: more evidence is needed before
    acting).
    """
    matrix = ConfusionMatrix()
    for node, outcome in verdicts.items():
        flagged = outcome == DecisionOutcome.INTRUDER
        if outcome == DecisionOutcome.UNRECOGNIZED and not treat_unrecognized_as_negative:
            continue
        if node in true_intruders:
            if flagged:
                matrix.true_positives += 1
            else:
                matrix.false_negatives += 1
        else:
            if flagged:
                matrix.false_positives += 1
            else:
                matrix.true_negatives += 1
    return matrix


def convergence_round(
    trajectory: Sequence[float],
    threshold: float,
    below: bool = True,
) -> Optional[int]:
    """First round at which the trajectory crosses ``threshold``.

    ``below=True`` looks for values ≤ threshold (detection of an intruder:
    Detect falling towards −1), ``below=False`` for values ≥ threshold.
    Returns ``None`` when the threshold is never crossed.
    """
    for index, value in enumerate(trajectory):
        if below and value <= threshold:
            return index
        if not below and value >= threshold:
            return index
    return None


def rounds_to_stable_verdict(
    outcomes: Sequence[DecisionOutcome],
    target: DecisionOutcome,
    stability: int = 2,
) -> Optional[int]:
    """First round after which the verdict equals ``target`` for ``stability``
    consecutive rounds (and never changes again before the end)."""
    run = 0
    for index, outcome in enumerate(outcomes):
        if outcome == target:
            run += 1
            if run >= stability:
                start = index - stability + 1
                if all(o == target for o in outcomes[start:]):
                    return start
        else:
            run = 0
    return None


@dataclass
class DetectionReport:
    """Aggregated view of a detection experiment used by the text reports."""

    scenario_name: str
    matrix: ConfusionMatrix
    convergence_rounds: Dict[str, Optional[int]] = field(default_factory=dict)
    final_detect_values: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def as_rows(self) -> List[Dict[str, object]]:
        """Flat rows (one per suspect) for tabular output."""
        rows = []
        for suspect in sorted(set(self.convergence_rounds) | set(self.final_detect_values)):
            rows.append(
                {
                    "scenario": self.scenario_name,
                    "suspect": suspect,
                    "convergence_round": self.convergence_rounds.get(suspect),
                    "final_detect": self.final_detect_values.get(suspect),
                }
            )
        return rows
