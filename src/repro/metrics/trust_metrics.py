"""Trust-trajectory analytics.

Figures 1 and 2 of the paper plot the trust value of every node (as seen by
the attacked node) across investigation rounds.  The helpers below compute
the properties those figures illustrate: monotonic decrease for liars,
slow increase for honest nodes, separation between the two groups, and the
recovery behaviour after the attack ceases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set


def is_monotonic(values: Sequence[float], increasing: bool, tolerance: float = 1e-9) -> bool:
    """Whether the sequence is monotonic in the requested direction."""
    for previous, current in zip(values, values[1:]):
        if increasing and current < previous - tolerance:
            return False
        if not increasing and current > previous + tolerance:
            return False
    return True


def total_change(values: Sequence[float]) -> float:
    """Last value minus first value (0 for empty or singleton sequences)."""
    if len(values) < 2:
        return 0.0
    return values[-1] - values[0]


def separation(
    trajectories: Mapping[str, Sequence[float]],
    group_a: Set[str],
    group_b: Set[str],
    at_round: int = -1,
) -> float:
    """Difference between the mean trust of two groups at a given round.

    Positive values mean group A is trusted more than group B.  Nodes whose
    trajectory is shorter than ``at_round`` are skipped.
    """
    def mean_at(group: Set[str]) -> Optional[float]:
        values = []
        for node in group:
            trajectory = trajectories.get(node)
            if not trajectory:
                continue
            try:
                values.append(trajectory[at_round])
            except IndexError:
                continue
        if not values:
            return None
        return sum(values) / len(values)

    mean_a = mean_at(group_a)
    mean_b = mean_at(group_b)
    if mean_a is None or mean_b is None:
        return 0.0
    return mean_a - mean_b


def first_round_below(values: Sequence[float], threshold: float) -> Optional[int]:
    """First index at which the trajectory is ≤ threshold (None when never)."""
    for index, value in enumerate(values):
        if value <= threshold:
            return index
    return None


def first_round_above(values: Sequence[float], threshold: float) -> Optional[int]:
    """First index at which the trajectory is ≥ threshold (None when never)."""
    for index, value in enumerate(values):
        if value >= threshold:
            return index
    return None


def recovery_gap(values: Sequence[float], target: float) -> float:
    """Distance between the final trust value and a recovery target.

    Figure 2 material: after the attack ceases, well-behaving nodes converge
    back to the default trust while former liars remain below it; the gap
    quantifies how far each node still is.
    """
    if not values:
        return target
    return target - values[-1]


@dataclass
class TrustTrajectoryReport:
    """Summary of a set of trust trajectories for one observer."""

    observer: str
    trajectories: Dict[str, List[float]] = field(default_factory=dict)
    liars: Set[str] = field(default_factory=set)
    honest: Set[str] = field(default_factory=set)
    attacker: Optional[str] = None

    def liar_trajectories(self) -> Dict[str, List[float]]:
        """Trajectories of the liar nodes."""
        return {n: t for n, t in self.trajectories.items() if n in self.liars}

    def honest_trajectories(self) -> Dict[str, List[float]]:
        """Trajectories of the honest nodes."""
        return {n: t for n, t in self.trajectories.items() if n in self.honest}

    def liars_all_decreasing(self) -> bool:
        """Whether every liar's trust decreased over the experiment."""
        return all(total_change(t) < 0 for t in self.liar_trajectories().values() if t)

    def honest_all_non_decreasing(self) -> bool:
        """Whether every honest node's trust did not decrease overall."""
        return all(total_change(t) >= -1e-9 for t in self.honest_trajectories().values() if t)

    def final_separation(self) -> float:
        """Mean honest trust minus mean liar trust at the last round."""
        return separation(self.trajectories, self.honest, self.liars, at_round=-1)

    def as_rows(self) -> List[Dict[str, object]]:
        """One row per node: role, initial, final, change."""
        rows = []
        for node in sorted(self.trajectories):
            trajectory = self.trajectories[node]
            role = "liar" if node in self.liars else (
                "attacker" if node == self.attacker else "honest")
            rows.append(
                {
                    "observer": self.observer,
                    "node": node,
                    "role": role,
                    "initial_trust": trajectory[0] if trajectory else None,
                    "final_trust": trajectory[-1] if trajectory else None,
                    "change": total_change(trajectory),
                }
            )
        return rows
