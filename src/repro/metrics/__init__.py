"""Metrics used to score detection runs and trust trajectories."""

from repro.metrics.detection import (
    ConfusionMatrix,
    DetectionReport,
    classification_matrix,
    convergence_round,
    rounds_to_stable_verdict,
)
from repro.metrics.trust_metrics import (
    TrustTrajectoryReport,
    first_round_above,
    first_round_below,
    is_monotonic,
    recovery_gap,
    separation,
    total_change,
)

__all__ = [
    "ConfusionMatrix",
    "DetectionReport",
    "TrustTrajectoryReport",
    "classification_matrix",
    "convergence_round",
    "first_round_above",
    "first_round_below",
    "is_monotonic",
    "recovery_gap",
    "rounds_to_stable_verdict",
    "separation",
    "total_change",
]
