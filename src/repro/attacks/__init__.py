"""Attack implementations against the OLSR substrate.

The paper's taxonomy (Section II-B) distinguishes drop attacks, active-forge
attacks and modify-and-forward attacks; the paper's own developed attack is
the *link spoofing* active forge.  Every class installs hooks on the victim
node (HELLO/TC mutators, forward filters, message taps, answer mutators)
rather than patching the protocol implementation.
"""

from repro.attacks.base import Attack, AttackSchedule, PeriodicSchedule
from repro.attacks.collusion import (
    CliqueMember,
    LiarClique,
    ThreatStack,
    grayhole_liar_stack,
)
from repro.attacks.dropping import (
    BlackholeAttack,
    GrayholeAttack,
    OnOffDroppingAttack,
    SelectiveDropFilter,
)
from repro.attacks.forge import (
    BroadcastStormAttack,
    HnaSpoofingAttack,
    IdentitySpoofingAttack,
    TcTamperingAttack,
    WillingnessManipulationAttack,
)
from repro.attacks.liar import LiarBehavior, LieMode
from repro.attacks.link_spoofing import (
    LinkSpoofingAttack,
    spoof_false_link,
    spoof_non_existent,
    spoof_omit_neighbor,
)
from repro.attacks.replay import ReplayAttack, SequenceNumberHijackAttack, WormholeAttack
from repro.attacks.scenario import AttackScenario

__all__ = [
    "Attack",
    "AttackSchedule",
    "AttackScenario",
    "BlackholeAttack",
    "BroadcastStormAttack",
    "CliqueMember",
    "GrayholeAttack",
    "HnaSpoofingAttack",
    "IdentitySpoofingAttack",
    "LiarBehavior",
    "LiarClique",
    "LieMode",
    "LinkSpoofingAttack",
    "OnOffDroppingAttack",
    "PeriodicSchedule",
    "ReplayAttack",
    "SelectiveDropFilter",
    "ThreatStack",
    "grayhole_liar_stack",
    "SequenceNumberHijackAttack",
    "TcTamperingAttack",
    "WillingnessManipulationAttack",
    "WormholeAttack",
    "spoof_false_link",
    "spoof_non_existent",
    "spoof_omit_neighbor",
]
