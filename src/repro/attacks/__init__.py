"""Attack implementations against the OLSR substrate.

The paper's taxonomy (Section II-B) distinguishes drop attacks, active-forge
attacks and modify-and-forward attacks; the paper's own developed attack is
the *link spoofing* active forge.  Every class installs hooks on the victim
node (HELLO/TC mutators, forward filters, message taps, answer mutators)
rather than patching the protocol implementation.

Adaptive tier (:mod:`repro.attacks.adaptive`)
---------------------------------------------
On top of the open-loop attacks sits a *closed-loop* tier: adversaries that
observe the detector's state and modulate their own behaviour.  The
feedback surface is deliberately narrow — a read-only
:class:`~repro.attacks.adaptive.TrustProbe` over
``TrustManager.trust_of``, i.e. exactly the signal a real attacker could
estimate from how its neighbours treat it — and the adaptation hook is one
method, ``observe(now)``, called once per detection cycle by the drivers
(the oracle round loop via ``ScenarioConfig.adaptivity``, the netsim
backend via ``SimulationScenario.adaptive_attacks``).  Three adversaries
implement the tier:

* :class:`~repro.attacks.adaptive.ThresholdRidingGrayhole` — throttles and
  pauses its dropping as its observed trust nears the classification
  threshold, resuming once the forgetting factor restores headroom;
* :class:`~repro.attacks.adaptive.RotatingLiarClique` — one active liar per
  epoch, the rest honest, starving per-recommender bookkeeping;
* the detectability search loop (:mod:`repro.attacks.search`) — a (1+λ)
  evolutionary search over fuzzer corpora hunting the least-detectable
  attack configuration (CLI: ``python -m repro.experiments attack-search``).

Seeding: attacks default to a per-node deterministic RNG derived at
``install()`` time via ``stable_seed(0, f"attack:{name}:{node_id}")``, so
two attackers never share a stream unless the caller passes one RNG to
both on purpose.
"""

from repro.attacks.adaptive import (
    AdaptiveAttack,
    DropCycleRecord,
    DropLoopResult,
    RotatingLiarClique,
    ThresholdRidingGrayhole,
    TrustProbe,
    run_drop_feedback_loop,
)
from repro.attacks.base import Attack, AttackSchedule, PeriodicSchedule
from repro.attacks.collusion import (
    CliqueMember,
    LiarClique,
    ThreatStack,
    grayhole_liar_stack,
)
from repro.attacks.dropping import (
    BlackholeAttack,
    GrayholeAttack,
    OnOffDroppingAttack,
    SelectiveDropFilter,
)
from repro.attacks.forge import (
    BroadcastStormAttack,
    HnaSpoofingAttack,
    IdentitySpoofingAttack,
    TcTamperingAttack,
    WillingnessManipulationAttack,
)
from repro.attacks.liar import LiarBehavior, LieMode
from repro.attacks.link_spoofing import (
    LinkSpoofingAttack,
    spoof_false_link,
    spoof_non_existent,
    spoof_omit_neighbor,
)
from repro.attacks.replay import ReplayAttack, SequenceNumberHijackAttack, WormholeAttack
from repro.attacks.scenario import AttackScenario

__all__ = [
    "AdaptiveAttack",
    "Attack",
    "AttackSchedule",
    "AttackScenario",
    "BlackholeAttack",
    "BroadcastStormAttack",
    "CliqueMember",
    "DropCycleRecord",
    "DropLoopResult",
    "GrayholeAttack",
    "HnaSpoofingAttack",
    "IdentitySpoofingAttack",
    "LiarBehavior",
    "LiarClique",
    "LieMode",
    "LinkSpoofingAttack",
    "OnOffDroppingAttack",
    "PeriodicSchedule",
    "ReplayAttack",
    "RotatingLiarClique",
    "SelectiveDropFilter",
    "ThresholdRidingGrayhole",
    "ThreatStack",
    "TrustProbe",
    "grayhole_liar_stack",
    "run_drop_feedback_loop",
    "SequenceNumberHijackAttack",
    "TcTamperingAttack",
    "WillingnessManipulationAttack",
    "WormholeAttack",
    "spoof_false_link",
    "spoof_non_existent",
    "spoof_omit_neighbor",
]
