"""Modify-and-forward attacks: replay, sequence-number hijack, wormhole.

These attacks capture legitimate control messages and replay or tamper with
them before (re)injection, possibly in a different region of the network
(the wormhole built by two colluding intruders).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.attacks.base import Attack, AttackSchedule, _underlying_router
from repro.olsr.constants import MessageType
from repro.olsr.messages import OlsrMessage
from repro.olsr.packet import OlsrPacket


class ReplayAttack(Attack):
    """Record received control messages and replay them after ``delay`` seconds.

    Replayed messages keep their original originator and sequence number (the
    attack "stays invisible"), so victims whose duplicate tuples have expired
    update their routing state with obsolete information.
    """

    name = "replay"

    def __init__(
        self,
        delay: float = 40.0,
        message_type: MessageType = MessageType.TC,
        max_replays: Optional[int] = None,
        schedule: Optional[AttackSchedule] = None,
    ) -> None:
        super().__init__(schedule)
        if delay <= 0:
            raise ValueError("delay must be positive")
        self.delay = delay
        self.message_type = message_type
        self.max_replays = max_replays
        self.replayed_count = 0
        self._node = None

    def install(self, node) -> None:
        olsr = _underlying_router(node)
        self._node = olsr
        olsr.message_taps.append(self._tap)
        self.mark_installed(olsr.node_id)

    def _tap(self, message: OlsrMessage, last_hop: str, node) -> None:
        if not self.is_active(node.now):
            return
        if message.message_type != self.message_type:
            return
        if self.max_replays is not None and self.replayed_count >= self.max_replays:
            return
        self.replayed_count += 1
        node.simulator.schedule(self.delay, self._replay, message)

    def _replay(self, message: OlsrMessage) -> None:
        node = self._node
        if node is None or not self.is_active(node.now):
            return
        replayed = OlsrMessage(
            originator=message.originator,
            body=message.body,
            vtime=message.vtime,
            ttl=max(message.ttl, 2),
            hop_count=message.hop_count,
            message_seq_number=message.message_seq_number,
        )
        packet = OlsrPacket.bundle(node.node_id, [replayed])
        node.interface.broadcast(packet, size_bytes=packet.size_bytes())


class SequenceNumberHijackAttack(Attack):
    """Forward messages with an inflated sequence number.

    The victim then believes the attacker provides the freshest route, and
    genuine later messages are discarded as "old".
    """

    name = "sequence-hijack"

    def __init__(self, increment: int = 1000,
                 schedule: Optional[AttackSchedule] = None) -> None:
        super().__init__(schedule)
        self.increment = increment
        self.hijacked_count = 0

    def install(self, node) -> None:
        olsr = _underlying_router(node)
        olsr.message_taps.append(self._tap)
        self.mark_installed(olsr.node_id)

    def _tap(self, message: OlsrMessage, last_hop: str, node) -> None:
        if not self.is_active(node.now):
            return
        if message.message_type != MessageType.TC:
            return
        forged = OlsrMessage(
            originator=message.originator,
            body=message.body,
            vtime=message.vtime,
            ttl=max(message.ttl - 1, 1),
            hop_count=message.hop_count + 1,
            message_seq_number=message.message_seq_number + self.increment,
        )
        packet = OlsrPacket.bundle(node.node_id, [forged])
        node.interface.broadcast(packet, size_bytes=packet.size_bytes())
        self.hijacked_count += 1


class WormholeAttack(Attack):
    """Two colluding intruders tunnelling control traffic between regions.

    Messages captured at one endpoint are re-emitted, unchanged, at the other
    endpoint after ``tunnel_latency`` seconds, making distant nodes appear as
    neighbours and corrupting the topology seen by both regions.
    """

    name = "wormhole"

    def __init__(self, tunnel_latency: float = 0.05,
                 message_type: MessageType = MessageType.HELLO,
                 schedule: Optional[AttackSchedule] = None) -> None:
        super().__init__(schedule)
        self.tunnel_latency = tunnel_latency
        self.message_type = message_type
        self.tunnelled_count = 0
        self._endpoints: List = []

    def install(self, node) -> None:
        olsr = _underlying_router(node)
        if len(self._endpoints) >= 2:
            raise ValueError("a wormhole has exactly two endpoints")
        self._endpoints.append(olsr)
        olsr.message_taps.append(self._make_tap(olsr))
        self.mark_installed(olsr.node_id)

    def install_pair(self, node_a, node_b) -> None:
        """Install both tunnel endpoints at once."""
        self.install(node_a)
        self.install(node_b)

    def _make_tap(self, endpoint):
        def tap(message: OlsrMessage, last_hop: str, node) -> None:
            if not self.is_active(node.now):
                return
            if message.message_type != self.message_type:
                return
            other = self._other_endpoint(endpoint)
            if other is None:
                return
            self.tunnelled_count += 1
            node.simulator.schedule(self.tunnel_latency, self._reemit, other, message)
        return tap

    def _other_endpoint(self, endpoint):
        for candidate in self._endpoints:
            if candidate is not endpoint:
                return candidate
        return None

    def _reemit(self, endpoint, message: OlsrMessage) -> None:
        if not self.is_active(endpoint.now):
            return
        packet = OlsrPacket.bundle(endpoint.node_id, [message])
        endpoint.interface.broadcast(packet, size_bytes=packet.size_bytes())

    def endpoints(self) -> Tuple[str, ...]:
        """Node ids of the installed tunnel endpoints."""
        return tuple(e.node_id for e in self._endpoints)
