"""Drop attacks: blackhole and grayhole (Section II-B).

A drop attack is characterised by a node that, instead of relaying messages
it should forward as an MPR, silently discards them.  Dropping everything is
a *blackhole*; selective or probabilistic dropping is a *grayhole*.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional, Set

from repro.attacks.base import Attack, AttackSchedule, PeriodicSchedule, _underlying_router
from repro.olsr.constants import MessageType
from repro.olsr.messages import OlsrMessage
from repro.seeding import stable_seed


class BlackholeAttack(Attack):
    """Drop every message the compromised node should have relayed."""

    name = "blackhole"

    def __init__(self, schedule: Optional[AttackSchedule] = None) -> None:
        super().__init__(schedule)
        self.dropped_count = 0

    def install(self, node) -> None:
        olsr = _underlying_router(node)
        olsr.forward_filters.append(self._filter)
        self.mark_installed(olsr.node_id)

    def _filter(self, message: OlsrMessage, last_hop: str, node) -> bool:
        if not self.is_active(node.now):
            return True
        self.dropped_count += 1
        return False


class GrayholeAttack(Attack):
    """Selective dropping.

    Messages are dropped with probability ``drop_probability``; additionally
    the drop can be restricted to specific message types and/or originators
    (e.g. drop only the TC messages of a victim, hiding it from the rest of
    the network).
    """

    name = "grayhole"

    def __init__(
        self,
        drop_probability: float = 0.5,
        message_types: Optional[Iterable[MessageType]] = None,
        victim_originators: Optional[Iterable[str]] = None,
        schedule: Optional[AttackSchedule] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(schedule)
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        self.drop_probability = drop_probability
        self.message_types: Optional[Set[MessageType]] = (
            set(message_types) if message_types is not None else None
        )
        self.victim_originators: Optional[Set[str]] = (
            set(victim_originators) if victim_originators is not None else None
        )
        # When no rng is supplied, a per-node stream is derived at install()
        # time (stable_seed of the node id, as OracleTransport does per
        # owner); two default-constructed grayholes on different nodes used
        # to share random.Random(0) and drop the exact same message indices.
        # The pre-install fallback keeps uninstalled standalone use working.
        self._rng_supplied = rng is not None
        self.rng = rng if rng is not None else random.Random(0)
        self.dropped_count = 0
        self.relayed_count = 0

    def install(self, node) -> None:
        olsr = _underlying_router(node)
        if not self._rng_supplied and not self.installed_on:
            self.rng = random.Random(
                stable_seed(0, f"attack:{self.name}:{olsr.node_id}"))
        olsr.forward_filters.append(self._filter)
        self.mark_installed(olsr.node_id)

    def _filter(self, message: OlsrMessage, last_hop: str, node) -> bool:
        if not self.is_active(node.now):
            return True
        if self.message_types is not None and message.message_type not in self.message_types:
            self.relayed_count += 1
            return True
        if (
            self.victim_originators is not None
            and message.originator not in self.victim_originators
        ):
            self.relayed_count += 1
            return True
        if self.rng.random() < self.drop_probability:
            self.dropped_count += 1
            return False
        self.relayed_count += 1
        return True

    @property
    def observed_drop_ratio(self) -> float:
        """Fraction of eligible messages actually dropped so far."""
        total = self.dropped_count + self.relayed_count
        if total == 0:
            return 0.0
        return self.dropped_count / total

    def describe(self) -> dict:
        data = super().describe()
        data.update({
            "drop_probability": self.drop_probability,
            "message_types": (sorted(str(t) for t in self.message_types)
                              if self.message_types is not None else None),
            "victim_originators": (sorted(self.victim_originators)
                                   if self.victim_originators is not None else None),
            "dropped": self.dropped_count,
            "relayed": self.relayed_count,
            "observed_drop_ratio": self.observed_drop_ratio,
        })
        return data


class OnOffDroppingAttack(GrayholeAttack):
    """Grayhole that drops only during periodic on-windows.

    The attack alternates ``on_duration`` seconds of (probabilistic)
    dropping with ``off_duration`` seconds of faithful relaying, starting at
    ``start_time``.  During the off-windows the node is indistinguishable
    from an honest MPR, which starves the detector of fresh evidence and
    exercises the trust system's forgetting factor between bursts.
    """

    name = "onoff-dropping"

    def __init__(
        self,
        drop_probability: float = 1.0,
        on_duration: float = 10.0,
        off_duration: float = 10.0,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        message_types: Optional[Iterable[MessageType]] = None,
        victim_originators: Optional[Iterable[str]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(
            drop_probability=drop_probability,
            message_types=message_types,
            victim_originators=victim_originators,
            schedule=PeriodicSchedule(
                start_time=start_time,
                stop_time=stop_time,
                on_duration=on_duration,
                off_duration=off_duration,
            ),
            rng=rng,
        )

    def describe(self) -> dict:
        data = super().describe()
        schedule = self.schedule
        if isinstance(schedule, PeriodicSchedule):
            data.update({
                "on_duration": schedule.on_duration,
                "off_duration": schedule.off_duration,
            })
        return data


class SelectiveDropFilter(Attack):
    """Drop messages selected by an arbitrary predicate (building block).

    Used by tests and by composite scenarios that need a drop behaviour not
    covered by the blackhole/grayhole classes (e.g. drop only investigation
    traffic).
    """

    name = "selective-drop"

    def __init__(
        self,
        predicate: Callable[[OlsrMessage, str], bool],
        schedule: Optional[AttackSchedule] = None,
    ) -> None:
        super().__init__(schedule)
        self.predicate = predicate
        self.dropped_count = 0

    def install(self, node) -> None:
        olsr = _underlying_router(node)
        olsr.forward_filters.append(self._filter)
        self.mark_installed(olsr.node_id)

    def _filter(self, message: OlsrMessage, last_hop: str, node) -> bool:
        if not self.is_active(node.now):
            return True
        if self.predicate(message, last_hop):
            self.dropped_count += 1
            return False
        return True
