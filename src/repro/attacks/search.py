"""Detectability search: a (1+λ) evolutionary loop hunting stealthy configs.

The third adaptive adversary is not a node behaviour but a *search process*:
given the fuzzer's corpus of static attack scenarios as a starting
population, it mutates the adversary-controlled knobs (adaptivity tier,
liar head-count, riding thresholds) and keeps whatever the detector notices
least.  The loop is elitist — the incumbent survives every generation — so
its winner is never more detectable than the best static corpus entry it
started from, and every evaluation derives from
:func:`repro.seeding.stable_seed`, so a search is a pure function of its
``(base_seed, corpus, generations, children)`` arguments.

The detectability score (lower = stealthier)::

    detected at round k of n   →  1 + (n - k) / n        (in (1, 2])
    never classified INTRUDER  →  trust erosion fraction (in [0, 1))

so any undetected configuration strictly beats any detected one, and among
undetected ones the attacker prefers the config that erodes its trust
least.  Winners are shrunk with the validation harness's
:func:`~repro.validation.fuzz.minimize_params` (a simplification is kept
only while the config stays at least as stealthy as the static baseline)
and reported as a copy-pastable ``python -m repro.experiments run
adaptivity`` reproducer line.

CLI: ``python -m repro.experiments attack-search --corpus 4 --generations 6
--children 4``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.decision import DecisionOutcome
from repro.experiments.backends import (
    execute_backend,
    scenario_config_from_params,
)
from repro.experiments.config import ADAPTIVITY_MODES
from repro.experiments.rounds import ExperimentResult
from repro.scenarios import ScenarioFuzzer, apply_profile, reproducer_command
from repro.seeding import stable_seed
from repro.validation.fuzz import minimize_params

#: Riding-band values the mutator may install (kept inside the trust model's
#: useful range: above the classification region, below the default trust).
RIDING_THRESHOLDS: Sequence[float] = (0.28, 0.30, 0.32, 0.34, 0.36)
#: Resume offsets above the riding threshold (hysteresis width).
RIDING_GAPS: Sequence[float] = (0.02, 0.04, 0.06, 0.08)


def detectability_score(result: ExperimentResult) -> float:
    """How visibly the attacker behaved in one run (lower = stealthier).

    A run where the decision rule ever says INTRUDER scores in ``(1, 2]``
    (earlier detection → higher score); an unclassified run scores its trust
    erosion fraction in ``[0, 1)``.  The gap at 1.0 makes "never caught"
    incomparable-in-the-attacker's-favour with "caught late".
    """
    rounds = result.rounds
    total = len(rounds)
    if total == 0:
        return 0.0
    for record in rounds:
        if record.outcome == DecisionOutcome.INTRUDER:
            return 1.0 + (total - record.round_index) / total
    default = result.config.trust.default_trust
    final = None
    for record in reversed(rounds):
        if record.trust_snapshot:
            final = record.trust_snapshot.get(result.attacker)
            break
    if final is None or default <= 0:
        return 0.0
    return max(0.0, (default - final) / default)


@dataclass(frozen=True)
class EvaluatedConfig:
    """One evaluated attack configuration (frozen; sortable by score)."""

    label: str
    params: Tuple[Tuple[str, object], ...]
    seed: int
    score: float

    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)


@dataclass
class AttackSearchResult:
    """Outcome of one detectability search."""

    backend: str
    base_seed: int
    generations: int
    children: int
    evaluations: int = 0
    baselines: List[EvaluatedConfig] = field(default_factory=list)
    #: Best config after each generation (index 0 = the static incumbent).
    trajectory: List[EvaluatedConfig] = field(default_factory=list)
    winner: Optional[EvaluatedConfig] = None
    minimized: Optional[EvaluatedConfig] = None
    reproducer: str = ""

    @property
    def best_static(self) -> EvaluatedConfig:
        """The stealthiest static corpus entry (the search's baseline)."""
        return min(self.baselines, key=lambda e: (e.score, e.label))

    def format_report(self) -> str:
        """Deterministic plain-text report of the search."""
        lines = [
            "Attack-detectability search",
            f"  backend:      {self.backend}",
            f"  base seed:    {self.base_seed}",
            f"  corpus:       {len(self.baselines)} static baselines",
            f"  generations:  {self.generations} x {self.children} children",
            f"  evaluations:  {self.evaluations}",
            "",
            "  static baselines (detectability, lower = stealthier):",
        ]
        for entry in self.baselines:
            lines.append(f"    {entry.score:.4f}  {entry.label}")
        lines.append("")
        lines.append("  search trajectory:")
        for index, entry in enumerate(self.trajectory):
            lines.append(f"    gen {index}: {entry.score:.4f}  {entry.label}")
        if self.winner is not None:
            best = self.best_static
            lines.append("")
            lines.append(f"  winner: {self.winner.score:.4f} ({self.winner.label})"
                         f" vs best static {best.score:.4f} ({best.label})")
            shown = self.minimized or self.winner
            interesting = sorted(
                (name, value) for name, value in shown.params
                if name in ("adaptivity", "liar_count", "riding_threshold",
                            "riding_resume", "threat", "total_nodes"))
            for name, value in interesting:
                lines.append(f"    {name} = {value}")
            lines.append("")
            lines.append(f"  reproduce: {self.reproducer}")
        return "\n".join(lines)


def _evaluate(params: Mapping[str, object], seed: int, backend: str) -> float:
    """Detectability of one fully-specified attack configuration."""
    expanded = apply_profile(dict(params))
    config = scenario_config_from_params(expanded, seed)
    result = execute_backend(backend, config, expanded)
    return detectability_score(result)


def _describe(params: Mapping[str, object]) -> str:
    """Short human label of the adversary-controlled knobs."""
    adaptivity = params.get("adaptivity", "static")
    bits = [f"adaptivity={adaptivity}", f"liars={params.get('liar_count', 0)}"]
    if adaptivity == "throttling":
        bits.append(f"ride={params.get('riding_threshold')}"
                    f"/{params.get('riding_resume')}")
    return " ".join(str(b) for b in bits)


def _mutate(params: Dict[str, object], rng: random.Random) -> Dict[str, object]:
    """One mutated child: perturb a single adversary-controlled knob."""
    child = dict(params)
    move = rng.randrange(4)
    if move == 0:
        child["adaptivity"] = ADAPTIVITY_MODES[rng.randrange(len(ADAPTIVITY_MODES))]
    elif move == 1:
        total = int(child.get("total_nodes", 8))
        ceiling = max(0, (total - 2) // 4)
        current = int(child.get("liar_count", 0))
        step = 1 if rng.random() < 0.5 else -1
        child["liar_count"] = min(ceiling, max(0, current + step))
    elif move == 2:
        child["riding_threshold"] = RIDING_THRESHOLDS[
            rng.randrange(len(RIDING_THRESHOLDS))]
    else:
        gap = RIDING_GAPS[rng.randrange(len(RIDING_GAPS))]
        child["riding_resume"] = round(
            float(child.get("riding_threshold", 0.32)) + gap, 4)
    # Keep the hysteresis band well-formed whatever the move touched.
    threshold = float(child.get("riding_threshold", 0.32))
    resume = float(child.get("riding_resume", 0.38))
    if resume < threshold:
        child["riding_resume"] = round(threshold + 0.02, 4)
    return child


def search_attack_configs(
    corpus_size: int = 4,
    generations: int = 6,
    children: int = 4,
    base_seed: int = 0,
    rounds: int = 20,
    backend: str = "oracle",
    profiles: Optional[Sequence[str]] = None,
    minimize: bool = True,
) -> AttackSearchResult:
    """Run the (1+λ) detectability search and return its result.

    ``corpus_size`` static fuzzer samples (``adaptivity`` forced to
    ``static``) are scored first; the stealthiest becomes the incumbent.
    Each of ``generations`` rounds then scores ``children`` single-knob
    mutations of the incumbent on the incumbent's pinned seed and keeps the
    best of parent+children (ties favour the parent, so drift needs strict
    improvement).  Elitism guarantees ``winner.score <=
    best_static.score``.
    """
    if corpus_size < 1:
        raise ValueError("corpus_size must be >= 1")
    search = AttackSearchResult(backend=backend, base_seed=base_seed,
                                generations=generations, children=children)

    fuzzer = ScenarioFuzzer(base_seed, profiles)
    for sample in fuzzer.corpus(corpus_size):
        params = sample.params_dict()
        params["adaptivity"] = "static"
        params["rounds"] = rounds
        score = _evaluate(params, sample.seed, backend)
        search.evaluations += 1
        search.baselines.append(EvaluatedConfig(
            label=f"{sample.run_id()} {_describe(params)}",
            params=tuple(sorted(params.items())),
            seed=sample.seed,
            score=score,
        ))

    incumbent = search.best_static
    search.trajectory.append(incumbent)
    for generation in range(generations):
        best = incumbent
        for child_index in range(children):
            rng = random.Random(stable_seed(
                base_seed, f"attack-search:{generation}:{child_index}"))
            child_params = _mutate(incumbent.params_dict(), rng)
            score = _evaluate(child_params, incumbent.seed, backend)
            search.evaluations += 1
            candidate = EvaluatedConfig(
                label=f"gen{generation}.{child_index} {_describe(child_params)}",
                params=tuple(sorted(child_params.items())),
                seed=incumbent.seed,
                score=score,
            )
            if candidate.score < best.score:
                best = candidate
        incumbent = best
        search.trajectory.append(incumbent)

    search.winner = incumbent
    baseline_score = search.best_static.score

    final = incumbent
    if minimize:
        def _still_stealthy(candidate: Mapping[str, object]) -> bool:
            search.evaluations += 1
            return _evaluate(candidate, incumbent.seed, backend) <= baseline_score

        shrunk = minimize_params(incumbent.params_dict(), incumbent.seed,
                                 _still_stealthy)
        final = EvaluatedConfig(
            label=f"minimized {_describe(shrunk)}",
            params=tuple(sorted(shrunk.items())),
            seed=incumbent.seed,
            score=_evaluate(shrunk, incumbent.seed, backend),
        )
        search.evaluations += 1
        search.minimized = final

    explicit = {name: value for name, value in final.params
                if name != "profile"}
    # ``adaptivity`` is the adaptivity experiment's swept axis; the engine
    # insists axis values are pinned with --axis, not --param.
    adaptivity = explicit.pop("adaptivity", "static")
    search.reproducer = (
        reproducer_command(explicit, final.seed,
                           experiment="adaptivity", backend=backend)
        + f" --axis adaptivity={adaptivity}")
    return search
