"""Active-forge attacks: broadcast storm, identity spoofing, willingness
manipulation and TC tampering (Section II-B).

These attacks inject novel, deceptive control messages (or tamper with the
ones the node legitimately generates) rather than suppressing traffic.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.attacks.base import (
    Attack,
    AttackSchedule,
    _underlying_router,
    require_protocol_hook,
)
from repro.olsr.constants import Willingness
from repro.olsr.messages import HelloMessage, OlsrMessage, TcMessage
from repro.olsr.packet import OlsrPacket


class BroadcastStormAttack(Attack):
    """Exhaust resources by flooding a burst of forged control messages.

    Every ``period`` seconds the compromised node emits ``burst_size`` forged
    TC messages, optionally spoofing another node's identity to couple the
    storm with a masquerade (as the paper describes).
    """

    name = "broadcast-storm"

    def __init__(
        self,
        burst_size: int = 20,
        period: float = 1.0,
        spoofed_originator: Optional[str] = None,
        schedule: Optional[AttackSchedule] = None,
    ) -> None:
        super().__init__(schedule)
        if burst_size <= 0:
            raise ValueError("burst_size must be positive")
        if period <= 0:
            raise ValueError("period must be positive")
        self.burst_size = burst_size
        self.period = period
        self.spoofed_originator = spoofed_originator
        self.forged_count = 0
        self._node = None

    def install(self, node) -> None:
        olsr = _underlying_router(node)
        self._node = olsr
        olsr.simulator.schedule_periodic(self.period, self._emit_burst,
                                         start_delay=self.schedule.start_time or self.period)
        self.mark_installed(olsr.node_id)

    def _emit_burst(self) -> None:
        node = self._node
        if node is None or not self.is_active(node.now):
            return
        originator = self.spoofed_originator or node.node_id
        for _ in range(self.burst_size):
            tc = TcMessage(ansn=node.ansn, advertised_neighbors=set(node.symmetric_neighbors()))
            message = OlsrMessage(originator=originator, body=tc,
                                  vtime=node.config.topology_hold_time)
            packet = OlsrPacket.bundle(node.node_id, [message])
            node.interface.broadcast(packet, size_bytes=packet.size_bytes())
            self.forged_count += 1


class IdentitySpoofingAttack(Attack):
    """Masquerade: emit HELLOs whose originator field is another node's address."""

    name = "identity-spoofing"

    def __init__(self, spoofed_identity: str, period: float = 2.0,
                 schedule: Optional[AttackSchedule] = None) -> None:
        super().__init__(schedule)
        self.spoofed_identity = spoofed_identity
        self.period = period
        self.forged_count = 0
        self._node = None

    def install(self, node) -> None:
        olsr = _underlying_router(node)
        self._node = olsr
        olsr.simulator.schedule_periodic(self.period, self._emit_spoofed_hello,
                                         start_delay=self.period)
        self.mark_installed(olsr.node_id)

    def _emit_spoofed_hello(self) -> None:
        node = self._node
        if node is None or not self.is_active(node.now):
            return
        hello = node.build_hello()
        message = OlsrMessage(originator=self.spoofed_identity, body=hello,
                              vtime=node.config.neighbor_hold_time, ttl=1)
        packet = OlsrPacket.bundle(node.node_id, [message])
        node.interface.broadcast(packet, size_bytes=packet.size_bytes())
        self.forged_count += 1


class WillingnessManipulationAttack(Attack):
    """Tamper with the willingness field to bias MPR selection.

    ``WILL_ALWAYS`` ensures the compromised node is always selected as MPR
    (placing it on the forwarding paths); ``WILL_NEVER`` advertised on behalf
    of a victim would exclude it — here the attacker can only manipulate its
    own HELLOs, which is the case the paper considers.
    """

    name = "willingness-manipulation"

    def __init__(self, willingness: Willingness = Willingness.WILL_ALWAYS,
                 schedule: Optional[AttackSchedule] = None) -> None:
        super().__init__(schedule)
        self.willingness = willingness

    def install(self, node) -> None:
        olsr = _underlying_router(node)
        require_protocol_hook(olsr, "hello_mutators", self.name).append(
            self._mutate_hello)
        self.mark_installed(olsr.node_id)

    def _mutate_hello(self, hello: HelloMessage, node) -> HelloMessage:
        if not self.is_active(node.now):
            return hello
        forged = hello.copy()
        forged.willingness = self.willingness
        return forged


class HnaSpoofingAttack(Attack):
    """Forge HNA messages announcing external networks the node cannot reach.

    The paper notes that spoofing "the external route(s) in the HNA message"
    is analogous to link spoofing: victims install routes toward the bogus
    gateway, which can then drop or inspect the exported traffic.
    """

    name = "hna-spoofing"

    def __init__(self, spoofed_networks: Iterable[tuple], period: float = 5.0,
                 schedule: Optional[AttackSchedule] = None) -> None:
        super().__init__(schedule)
        self.spoofed_networks = [tuple(entry) for entry in spoofed_networks]
        if not self.spoofed_networks:
            raise ValueError("HNA spoofing requires at least one network")
        self.period = period
        self.forged_count = 0
        self._node = None

    def install(self, node) -> None:
        olsr = _underlying_router(node)
        self._node = olsr
        olsr.simulator.schedule_periodic(self.period, self._emit_forged_hna,
                                         start_delay=self.period)
        self.mark_installed(olsr.node_id)

    def _emit_forged_hna(self) -> None:
        node = self._node
        if node is None or not self.is_active(node.now):
            return
        from repro.olsr.messages import HnaMessage  # local import to avoid cycle at module load

        hna = HnaMessage(networks=list(self.spoofed_networks))
        message = OlsrMessage(originator=node.node_id, body=hna,
                              vtime=3 * node.config.tc_interval)
        packet = OlsrPacket.bundle(node.node_id, [message])
        node.interface.broadcast(packet, size_bytes=packet.size_bytes())
        self.forged_count += 1


class TcTamperingAttack(Attack):
    """Tamper with the topology declared in the node's own TC messages.

    ``added_neighbors`` are falsely advertised as MPR selectors (attracting
    routes through the attacker), ``removed_neighbors`` are withheld from the
    advertisement (hiding legitimate routes).
    """

    name = "tc-tampering"

    def __init__(
        self,
        added_neighbors: Optional[Iterable[str]] = None,
        removed_neighbors: Optional[Iterable[str]] = None,
        schedule: Optional[AttackSchedule] = None,
    ) -> None:
        super().__init__(schedule)
        self.added_neighbors: Set[str] = set(added_neighbors or set())
        self.removed_neighbors: Set[str] = set(removed_neighbors or set())
        if not self.added_neighbors and not self.removed_neighbors:
            raise ValueError("TC tampering requires something to add or remove")

    def install(self, node) -> None:
        olsr = _underlying_router(node)
        require_protocol_hook(olsr, "tc_mutators", self.name).append(
            self._mutate_tc)
        self.mark_installed(olsr.node_id)

    def _mutate_tc(self, tc: TcMessage, node) -> TcMessage:
        if not self.is_active(node.now):
            return tc
        forged = tc.copy()
        forged.advertised_neighbors |= self.added_neighbors
        forged.advertised_neighbors -= self.removed_neighbors
        return forged
