"""Attack framework.

An :class:`Attack` installs hooks into a victim-controlled router — any
:class:`repro.routing.base.RoutingProtocol` backend, either directly or
wrapped in a :class:`repro.core.detector_node.DetectorNode` — without
modifying the protocol implementation itself, mirroring how a compromised
router behaves from the outside.  Attacks that use only the base-class
hooks (``forward_filters``, ``message_taps``, ``data_handlers``) work on
every protocol; attacks that forge protocol messages (link spoofing, TC
forgery, replay) require the matching backend and say so when installed
elsewhere.  Attacks are activated and deactivated on a schedule, so
experiments can model attacks that cease mid-run (Figure 2 of the paper).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class AttackSchedule:
    """Activation window of an attack ``[start_time, stop_time)``.

    ``stop_time = None`` means the attack lasts for the whole experiment,
    which is the paper's default ("the attack takes place during the overall
    experiment, unless specified").
    """

    start_time: float = 0.0
    stop_time: Optional[float] = None

    def is_active(self, now: float) -> bool:
        """Whether the attack is active at simulated time ``now``."""
        if now < self.start_time:
            return False
        if self.stop_time is not None and now >= self.stop_time:
            return False
        return True


@dataclass
class PeriodicSchedule(AttackSchedule):
    """On–off activation: active ``on_duration`` out of every period.

    Starting at ``start_time``, the attack alternates between an active
    window of ``on_duration`` seconds and a quiet window of ``off_duration``
    seconds.  Intermittent misbehaviour is much harder to pin down than a
    permanent attack — the paper's detector only collects evidence while the
    misconduct is observable — so this schedule is the backbone of the
    "on–off dropping" threat profile.  ``stop_time`` still bounds the whole
    pattern.
    """

    on_duration: float = 10.0
    off_duration: float = 10.0

    def __post_init__(self) -> None:
        if self.on_duration <= 0.0:
            raise ValueError("on_duration must be positive")
        if self.off_duration < 0.0:
            raise ValueError("off_duration must be non-negative")

    def is_active(self, now: float) -> bool:
        if not super().is_active(now):
            return False
        period = self.on_duration + self.off_duration
        if period <= 0.0:
            return True
        return (now - self.start_time) % period < self.on_duration


class Attack(abc.ABC):
    """Base class of every attack implementation."""

    name: str = "attack"

    def __init__(self, schedule: Optional[AttackSchedule] = None) -> None:
        self.schedule = schedule or AttackSchedule()
        self.installed_on: List[str] = []
        self._manual_override: Optional[bool] = None
        self._activation_gates: List[Callable[[float], bool]] = []

    # ---------------------------------------------------------------- control
    def is_active(self, now: float) -> bool:
        """Whether the attack currently applies (manual override wins).

        Without an override the attack is active when its own schedule says
        so AND every registered activation gate agrees — a composite such as
        :class:`~repro.attacks.collusion.ThreatStack` gates its layers on the
        stack-level window this way.
        """
        if self._manual_override is not None:
            return self._manual_override
        if not self.schedule.is_active(now):
            return False
        return all(gate(now) for gate in self._activation_gates)

    def add_activation_gate(self, gate: Callable[[float], bool]) -> None:
        """AND an extra ``gate(now) -> bool`` condition into :meth:`is_active`."""
        self._activation_gates.append(gate)

    def activate(self) -> None:
        """Force the attack on regardless of the schedule."""
        self._manual_override = True

    def deactivate(self) -> None:
        """Force the attack off regardless of the schedule."""
        self._manual_override = False

    def follow_schedule(self) -> None:
        """Return control to the schedule after a manual override."""
        self._manual_override = None

    # ----------------------------------------------------------------- install
    @abc.abstractmethod
    def install(self, node) -> None:
        """Install the attack's hooks on ``node``."""

    def mark_installed(self, node_id: str) -> None:
        """Record that the attack was installed on ``node_id``."""
        if node_id not in self.installed_on:
            self.installed_on.append(node_id)

    def describe(self) -> dict:
        """Short description used by scenario reports."""
        return {
            "name": self.name,
            "installed_on": list(self.installed_on),
            "start_time": self.schedule.start_time,
            "stop_time": self.schedule.stop_time,
        }


def _underlying_router(node):
    """Return the routing protocol behind either a router or a DetectorNode."""
    if hasattr(node, "router"):
        return node.router
    if hasattr(node, "olsr"):
        return node.olsr
    return node


def require_protocol_hook(router, hook_name: str, attack_name: str):
    """Fetch a protocol-specific hook list, failing with a clear message.

    Message-forging attacks need hooks only their protocol defines (e.g.
    OLSR's ``hello_mutators``); installing them on another backend is a
    scenario bug, reported as such instead of a bare ``AttributeError``.
    """
    hook = getattr(router, hook_name, None)
    if hook is None:
        protocol = getattr(router, "protocol_name", type(router).__name__)
        raise TypeError(
            f"attack {attack_name!r} needs the {hook_name!r} hook, which "
            f"protocol {protocol!r} does not provide"
        )
    return hook


#: Backwards-compatible name from the OLSR-only days.
_underlying_olsr = _underlying_router
