"""Coordinated collusion: liar cliques and multi-attack stacks.

The paper's evaluation uses *independent* liars: each misbehaving responder
privately decides whether to falsify its answer, so with a lie probability
below 1 the liars frequently contradict one another and the investigator's
recommendation-trust bookkeeping (:class:`repro.trust.recommendation.
RecommendationManager`) picks the disagreeing ones off individually.  A
*clique* is the stronger adversary: its members draw one shared decision per
(suspect, time epoch) and all answer identically — either everyone shields
the suspect this epoch or everyone stays honest — so their recommendations
are mutually consistent and their combined Eq. 8 weight moves as one block.

:class:`ThreatStack` composes several attacks on the same compromised node
(e.g. grayhole + liar: drop traffic *and* shield yourself during the ensuing
investigation), which is how real compromises present: one misbehaving
router, several observable symptoms.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Set

from repro.attacks.base import Attack, AttackSchedule
from repro.attacks.liar import LiarBehavior, LieMode
from repro.seeding import stable_seed


class LiarClique:
    """Shared decision stream for a clique of colluding liars.

    The clique decides *once* per (suspect, epoch) whether its members lie,
    suppress or answer honestly during that epoch; every member consults the
    same decision, so the clique never contradicts itself.  Decisions are
    derived with :func:`repro.seeding.stable_seed` from the clique seed, the
    suspect and the epoch index — not from a shared mutable RNG — so they are
    independent of the order in which members are queried, which keeps
    oracle- and netsim-backend runs of the same scenario comparable.

    ``epoch_length`` maps simulated time onto decision epochs (the oracle
    round loop passes round indices as time, so the default of 1.0 gives one
    decision per round there; the netsim backend's 10-second detection cycles
    land 10 cycles per epoch decision at 1.0 — pass the cycle length to align
    them).
    """

    def __init__(
        self,
        protected_suspects: Optional[Iterable[str]] = None,
        lie_probability: float = 1.0,
        suppress_probability: float = 0.0,
        mode: LieMode = LieMode.PROTECT,
        epoch_length: float = 1.0,
        seed: int = 0,
        schedule: Optional[AttackSchedule] = None,
    ) -> None:
        if not 0.0 <= lie_probability <= 1.0:
            raise ValueError("lie_probability must be in [0, 1]")
        if not 0.0 <= suppress_probability <= 1.0:
            raise ValueError("suppress_probability must be in [0, 1]")
        if epoch_length <= 0.0:
            raise ValueError("epoch_length must be positive")
        self.protected_suspects: Optional[Set[str]] = (
            set(protected_suspects) if protected_suspects is not None else None
        )
        self.lie_probability = lie_probability
        self.suppress_probability = suppress_probability
        self.mode = mode
        self.epoch_length = epoch_length
        self.seed = seed
        self.schedule = schedule or AttackSchedule()
        self.members: List["CliqueMember"] = []

    # ------------------------------------------------------------- decisions
    def decision(self, suspect: str, now: float) -> str:
        """The clique-wide verdict for ``suspect`` at time ``now``.

        Returns ``"lie"``, ``"suppress"`` or ``"honest"``; every member maps
        the same (suspect, epoch) to the same verdict.
        """
        epoch = int(now // self.epoch_length)
        rng = random.Random(stable_seed(self.seed, f"clique:{suspect}@{epoch}"))
        if self.suppress_probability and rng.random() < self.suppress_probability:
            return "suppress"
        if rng.random() < self.lie_probability:
            return "lie"
        return "honest"

    def member_decision(self, member_id: str, suspect: str, now: float) -> str:
        """The verdict ``member_id`` applies for ``suspect`` at time ``now``.

        The base clique ignores the member identity — everyone executes the
        shared epoch decision.  Subclasses (the rotating clique of
        :mod:`repro.attacks.adaptive`) override this to vary the verdict per
        member while keeping the shared stream intact.
        """
        return self.decision(suspect, now)

    # -------------------------------------------------------------- members
    def member(self, node_id: str) -> "CliqueMember":
        """Create (and register) the lying behaviour of one clique member."""
        behavior = CliqueMember(self, node_id)
        self.members.append(behavior)
        return behavior

    def describe(self) -> dict:
        """Summary used by scenario reports."""
        return {
            "name": "liar-clique",
            "members": [m.member_id for m in self.members],
            "mode": str(self.mode),
            "lie_probability": self.lie_probability,
            "suppress_probability": self.suppress_probability,
            "epoch_length": self.epoch_length,
        }


class CliqueMember(LiarBehavior):
    """One liar whose decisions come from its :class:`LiarClique`.

    Inherits the installation contract and the counters of
    :class:`~repro.attacks.liar.LiarBehavior`; only the per-query decision is
    replaced by the clique's shared verdict.
    """

    name = "clique-liar"

    def __init__(self, clique: LiarClique, member_id: str) -> None:
        super().__init__(
            protected_suspects=clique.protected_suspects,
            lie_probability=clique.lie_probability,
            suppress_probability=clique.suppress_probability,
            mode=clique.mode,
            schedule=clique.schedule,
        )
        self.clique = clique
        self.member_id = member_id

    def _decide(self, suspect: str, honest: Optional[bool], now: float) -> Optional[bool]:
        verdict = self.clique.member_decision(self.member_id, suspect, now)
        if verdict == "suppress":
            self.answers_suppressed += 1
            return None
        if verdict == "lie":
            self.lies_told += 1
            return self._lie(honest)
        self.honest_answers += 1
        return honest

    def _mutate_answer(self, suspect: str, requester: str,
                       honest: Optional[bool]) -> Optional[bool]:
        now = self._now()
        if not self.is_active(now) or not self._concerns_protected(suspect):
            self.honest_answers += 1
            return honest
        return self._decide(suspect, honest, now)

    def answer(self, honest: Optional[bool], now: float = 0.0,
               suspect: Optional[str] = None) -> Optional[bool]:
        """Stand-alone form used by the round-based harness."""
        if not self.is_active(now):
            self.honest_answers += 1
            return honest
        target = suspect
        if target is None:
            protected = self.protected_suspects or set()
            target = next(iter(sorted(protected)), "*")
        if not self._concerns_protected(target):
            self.honest_answers += 1
            return honest
        return self._decide(target, honest, now)

    def describe(self) -> dict:
        data = super().describe()
        data.update({"clique_members": [m.member_id for m in self.clique.members]})
        return data


class ThreatStack(Attack):
    """Several attacks installed together on one compromised node.

    A stacked threat is one adversary with several observable behaviours —
    the canonical example being *grayhole + liar*: the node drops traffic it
    should relay and, when investigated (for anything), shields itself with
    falsified answers.  The stack delegates ``install`` to each layer and
    mirrors activation controls to all of them, so scenarios treat it as a
    single attack.

    The stack-level ``schedule`` is an AND-gate over the layers: a layer is
    active only while its *own* schedule and the stack window both say so
    (a manual ``activate()``/``deactivate()`` on a layer still wins, matching
    the mirrored-control semantics).
    """

    name = "threat-stack"

    def __init__(self, attacks: Iterable[Attack],
                 schedule: Optional[AttackSchedule] = None) -> None:
        super().__init__(schedule)
        self.attacks: List[Attack] = list(attacks)
        if not self.attacks:
            raise ValueError("a threat stack needs at least one attack")
        for attack in self.attacks:
            # Bound method, not ``self.schedule.is_active``: replacing the
            # stack's schedule later must keep gating the layers.
            attack.add_activation_gate(self._stack_window)

    def _stack_window(self, now: float) -> bool:
        """Whether the stack-level schedule admits activity at ``now``."""
        return self.schedule.is_active(now)

    def install(self, node) -> None:
        for attack in self.attacks:
            attack.install(node)
        self.mark_installed(getattr(node, "node_id", "unknown"))

    def activate(self) -> None:
        super().activate()
        for attack in self.attacks:
            attack.activate()

    def deactivate(self) -> None:
        super().deactivate()
        for attack in self.attacks:
            attack.deactivate()

    def follow_schedule(self) -> None:
        super().follow_schedule()
        for attack in self.attacks:
            attack.follow_schedule()

    def describe(self) -> dict:
        data = super().describe()
        data["layers"] = [attack.describe() for attack in self.attacks]
        return data


def grayhole_liar_stack(
    protected_suspects: Optional[Iterable[str]] = None,
    drop_probability: float = 0.7,
    lie_probability: float = 1.0,
    start_time: float = 0.0,
    rng: Optional[random.Random] = None,
    liar_rng: Optional[random.Random] = None,
) -> ThreatStack:
    """The canonical stacked threat: probabilistic dropping + self-shielding.

    The compromised node grayholes relayed traffic and lies whenever an
    investigation touches one of ``protected_suspects`` (pass its own id to
    model pure self-protection).
    """
    from repro.attacks.dropping import GrayholeAttack

    schedule = AttackSchedule(start_time=start_time)
    grayhole = GrayholeAttack(drop_probability=drop_probability,
                              schedule=AttackSchedule(start_time=start_time),
                              rng=rng)
    liar = LiarBehavior(protected_suspects=protected_suspects,
                        lie_probability=lie_probability,
                        schedule=AttackSchedule(start_time=start_time),
                        rng=liar_rng)
    return ThreatStack([grayhole, liar], schedule=schedule)
