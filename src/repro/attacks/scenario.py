"""Attack scenarios: attach attacks to nodes on a schedule.

An :class:`AttackScenario` maps node identifiers to the attacks they carry
and installs everything on a network of nodes in one call.  It also exposes
the ground truth (who is an attacker, who is a liar) that the metrics module
needs to score the detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set

from repro.attacks.base import Attack
from repro.attacks.liar import LiarBehavior
from repro.attacks.link_spoofing import LinkSpoofingAttack


@dataclass
class AttackScenario:
    """A collection of attacks keyed by compromised node id."""

    name: str = "scenario"
    attacks_by_node: Dict[str, List[Attack]] = field(default_factory=dict)

    # ------------------------------------------------------------- definition
    def add(self, node_id: str, attack: Attack) -> "AttackScenario":
        """Attach ``attack`` to ``node_id`` (chainable)."""
        self.attacks_by_node.setdefault(node_id, []).append(attack)
        return self

    def install_all(self, nodes: Mapping[str, object]) -> None:
        """Install every attack on its node; unknown node ids raise ``KeyError``."""
        for node_id, attacks in self.attacks_by_node.items():
            if node_id not in nodes:
                raise KeyError(f"scenario references unknown node {node_id!r}")
            for attack in attacks:
                attack.install(nodes[node_id])

    # ------------------------------------------------------------ ground truth
    def attackers(self) -> Set[str]:
        """Nodes carrying an active-attack payload (anything but pure lying)."""
        result = set()
        for node_id, attacks in self.attacks_by_node.items():
            if any(not isinstance(a, LiarBehavior) for a in attacks):
                result.add(node_id)
        return result

    def liars(self) -> Set[str]:
        """Nodes carrying a liar behaviour."""
        result = set()
        for node_id, attacks in self.attacks_by_node.items():
            if any(isinstance(a, LiarBehavior) for a in attacks):
                result.add(node_id)
        return result

    def misbehaving(self) -> Set[str]:
        """Every compromised node (attackers ∪ liars)."""
        return set(self.attacks_by_node)

    def link_spoofers(self) -> Set[str]:
        """Nodes carrying a link-spoofing attack specifically."""
        result = set()
        for node_id, attacks in self.attacks_by_node.items():
            if any(isinstance(a, LinkSpoofingAttack) for a in attacks):
                result.add(node_id)
        return result

    def well_behaving(self, all_nodes: Set[str]) -> Set[str]:
        """Nodes of ``all_nodes`` that carry no attack at all."""
        return set(all_nodes) - self.misbehaving()

    # ----------------------------------------------------------------- control
    def stop_all(self) -> None:
        """Deactivate every attack (used to model the attack ceasing)."""
        for attacks in self.attacks_by_node.values():
            for attack in attacks:
                attack.deactivate()

    def resume_all(self) -> None:
        """Return every attack to its schedule."""
        for attacks in self.attacks_by_node.values():
            for attack in attacks:
                attack.follow_schedule()

    def describe(self) -> List[dict]:
        """Flat description of every attack in the scenario."""
        rows = []
        for node_id, attacks in sorted(self.attacks_by_node.items()):
            for attack in attacks:
                row = attack.describe()
                row["node"] = node_id
                rows.append(row)
        return rows
