"""Colluding liars.

Liars are the misbehaving nodes of the paper's evaluation that "do not
perform link spoofing but foil the detection by providing incorrect answers"
to the cooperative investigation.  A liar behaviour is installed on a
:class:`repro.core.detector_node.DetectorNode` (or any responder exposing
``answer_mutators``); it inverts — or suppresses — the honest answer when
the query concerns one of the protected suspects.
"""

from __future__ import annotations

import enum
import random
from typing import Iterable, Optional, Set

from repro.attacks.base import Attack, AttackSchedule
from repro.seeding import stable_seed


class LieMode(str, enum.Enum):
    """How a liar falsifies its answers."""

    #: Always confirm the suspect's advertised links (shield the attacker).
    PROTECT = "protect"
    #: Always deny them (frame an innocent node).
    FRAME = "frame"
    #: Invert whatever the honest answer would have been.
    INVERT = "invert"

    def __str__(self) -> str:
        return self.value


class LiarBehavior(Attack):
    """Provide falsified answers to link-verification queries.

    Parameters
    ----------
    protected_suspects:
        Suspects on whose behalf the liar lies.  ``None`` means the liar lies
        about every query (full collusion with any attacker).
    lie_probability:
        Probability of lying on an eligible query (1.0 = always lie).
    suppress_probability:
        Probability of withholding the answer entirely instead of lying
        (models colluders that stay silent to avoid exposure).
    mode:
        :class:`LieMode` — shield the suspect (default), frame it, or simply
        invert the honest answer.
    """

    name = "liar"

    def __init__(
        self,
        protected_suspects: Optional[Iterable[str]] = None,
        lie_probability: float = 1.0,
        suppress_probability: float = 0.0,
        mode: LieMode = LieMode.PROTECT,
        schedule: Optional[AttackSchedule] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(schedule)
        if not 0.0 <= lie_probability <= 1.0:
            raise ValueError("lie_probability must be in [0, 1]")
        if not 0.0 <= suppress_probability <= 1.0:
            raise ValueError("suppress_probability must be in [0, 1]")
        self.protected_suspects: Optional[Set[str]] = (
            set(protected_suspects) if protected_suspects is not None else None
        )
        self.lie_probability = lie_probability
        self.suppress_probability = suppress_probability
        self.mode = mode
        # Per-node stream derived at install() time when no rng is supplied
        # (stable_seed of the node id, mirroring OracleTransport's per-owner
        # derivation): two default-constructed liars used to share
        # random.Random(0) and lie on the exact same query indices.
        self._rng_supplied = rng is not None
        self.rng = rng if rng is not None else random.Random(0)
        self.lies_told = 0
        self.answers_suppressed = 0
        self.honest_answers = 0
        self._node = None

    def install(self, node) -> None:
        if not hasattr(node, "answer_mutators"):
            raise TypeError("LiarBehavior must be installed on a node exposing answer_mutators")
        self._node = node
        node_id = getattr(node, "node_id", "unknown")
        if not self._rng_supplied and not self.installed_on:
            self.rng = random.Random(stable_seed(0, f"attack:{self.name}:{node_id}"))
        node.answer_mutators.append(self._mutate_answer)
        self.mark_installed(node_id)

    # ------------------------------------------------------------------ logic
    def _concerns_protected(self, suspect: str) -> bool:
        if self.protected_suspects is None:
            return True
        return suspect in self.protected_suspects

    def _now(self) -> float:
        node = self._node
        if node is None:
            return 0.0
        olsr = getattr(node, "olsr", None)
        if olsr is not None:
            return olsr.now
        return getattr(node, "now", 0.0)

    def _lie(self, honest: Optional[bool]) -> Optional[bool]:
        """The falsified answer according to the configured mode."""
        if self.mode == LieMode.PROTECT:
            return True
        if self.mode == LieMode.FRAME:
            return False
        # INVERT: fabricate a protecting confirmation when there is nothing to invert.
        if honest is None:
            return True
        return not honest

    def _mutate_answer(self, suspect: str, requester: str,
                       honest: Optional[bool]) -> Optional[bool]:
        if not self.is_active(self._now()) or not self._concerns_protected(suspect):
            self.honest_answers += 1
            return honest
        if self.suppress_probability and self.rng.random() < self.suppress_probability:
            self.answers_suppressed += 1
            return None
        if self.rng.random() < self.lie_probability:
            self.lies_told += 1
            return self._lie(honest)
        self.honest_answers += 1
        return honest

    # simple-callable form used by the round-based experiment harness --------
    def answer(self, honest: Optional[bool], now: float = 0.0) -> Optional[bool]:
        """Stand-alone form of the lying decision, given the honest answer."""
        if not self.is_active(now):
            self.honest_answers += 1
            return honest
        if self.suppress_probability and self.rng.random() < self.suppress_probability:
            self.answers_suppressed += 1
            return None
        if self.rng.random() < self.lie_probability:
            self.lies_told += 1
            return self._lie(honest)
        self.honest_answers += 1
        return honest

    def describe(self) -> dict:
        data = super().describe()
        data.update(
            {
                "mode": str(self.mode),
                "lie_probability": self.lie_probability,
                "suppress_probability": self.suppress_probability,
                "lies_told": self.lies_told,
                "answers_suppressed": self.answers_suppressed,
            }
        )
        return data
