"""Link-spoofing attack (the paper's developed attack, Section III-A).

The intruder forges its HELLO messages so that the advertised symmetric
neighbourhood ``NS'_I`` differs from the real one ``NS_I``.  The three
variants correspond to Expressions 1–3:

* :attr:`LinkSpoofingVariant.NON_EXISTENT_NEIGHBOR` — declare a phantom node
  as symmetric neighbour, guaranteeing a misbehaving node becomes MPR.
* :attr:`LinkSpoofingVariant.FALSE_EXISTING_LINK` — declare an existing but
  non-adjacent node as neighbour, provisioning a blackhole.
* :attr:`LinkSpoofingVariant.OMITTED_NEIGHBOR` — omit a real neighbour,
  artificially shrinking connectivity.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.attacks.base import (
    Attack,
    AttackSchedule,
    _underlying_router,
    require_protocol_hook,
)
from repro.core.signatures import LinkSpoofingVariant
from repro.olsr.constants import LinkType, NeighborType
from repro.olsr.messages import HelloMessage, LinkAdvertisement


class LinkSpoofingAttack(Attack):
    """Forges the HELLO advertisements of the compromised node."""

    name = "link-spoofing"

    def __init__(
        self,
        variant: LinkSpoofingVariant,
        target_addresses: Iterable[str],
        schedule: Optional[AttackSchedule] = None,
        advertise_as_mpr_selector: bool = False,
    ) -> None:
        """``target_addresses`` are the addresses to add (variants 1 and 2) or
        to omit (variant 3).  ``advertise_as_mpr_selector`` additionally marks
        the spoofed neighbours with the MPR neighbour type, an aggressive
        refinement that speeds up the corruption of the MPR selection."""
        super().__init__(schedule)
        self.variant = variant
        self.target_addresses: List[str] = sorted(set(target_addresses))
        self.advertise_as_mpr_selector = advertise_as_mpr_selector
        if not self.target_addresses:
            raise ValueError("link spoofing requires at least one target address")

    # ------------------------------------------------------------------ hooks
    def install(self, node) -> None:
        olsr = _underlying_router(node)
        require_protocol_hook(olsr, "hello_mutators", self.name).append(
            self._mutate_hello)
        self.mark_installed(olsr.node_id)

    def _mutate_hello(self, hello: HelloMessage, node) -> HelloMessage:
        if not self.is_active(node.now):
            return hello
        if self.variant == LinkSpoofingVariant.OMITTED_NEIGHBOR:
            return self._omit_neighbors(hello)
        return self._add_spoofed_links(hello, node)

    def _add_spoofed_links(self, hello: HelloMessage, node) -> HelloMessage:
        forged = hello.copy()
        already = forged.all_addresses()
        neighbor_type = (
            NeighborType.MPR_NEIGH if self.advertise_as_mpr_selector else NeighborType.SYM_NEIGH
        )
        for address in self.target_addresses:
            if address in already or address == node.node_id:
                continue
            forged.links.append(
                LinkAdvertisement(
                    neighbor_address=address,
                    link_type=LinkType.SYM_LINK,
                    neighbor_type=neighbor_type,
                )
            )
        return forged

    def _omit_neighbors(self, hello: HelloMessage) -> HelloMessage:
        forged = hello.copy()
        omitted = set(self.target_addresses)
        forged.links = [adv for adv in forged.links if adv.neighbor_address not in omitted]
        return forged

    # ------------------------------------------------------------------ views
    def spoofed_links_of(self, real_symmetric: Set[str]) -> Set[str]:
        """The advertised-but-false (or omitted) links given the real neighbourhood.

        Useful for ground-truth checks in tests and metrics.
        """
        if self.variant == LinkSpoofingVariant.OMITTED_NEIGHBOR:
            return set(self.target_addresses) & real_symmetric
        return set(self.target_addresses) - real_symmetric

    def describe(self) -> dict:
        data = super().describe()
        data["variant"] = str(self.variant)
        data["targets"] = list(self.target_addresses)
        return data


def spoof_non_existent(node_or_id, phantom_addresses: Iterable[str],
                       schedule: Optional[AttackSchedule] = None) -> LinkSpoofingAttack:
    """Build (and optionally install) the Expression-1 variant."""
    attack = LinkSpoofingAttack(
        LinkSpoofingVariant.NON_EXISTENT_NEIGHBOR, phantom_addresses, schedule
    )
    if not isinstance(node_or_id, str) and node_or_id is not None:
        attack.install(node_or_id)
    return attack


def spoof_false_link(node_or_id, victim_addresses: Iterable[str],
                     schedule: Optional[AttackSchedule] = None) -> LinkSpoofingAttack:
    """Build (and optionally install) the Expression-2 variant."""
    attack = LinkSpoofingAttack(
        LinkSpoofingVariant.FALSE_EXISTING_LINK, victim_addresses, schedule
    )
    if not isinstance(node_or_id, str) and node_or_id is not None:
        attack.install(node_or_id)
    return attack


def spoof_omit_neighbor(node_or_id, omitted_addresses: Iterable[str],
                        schedule: Optional[AttackSchedule] = None) -> LinkSpoofingAttack:
    """Build (and optionally install) the Expression-3 variant."""
    attack = LinkSpoofingAttack(
        LinkSpoofingVariant.OMITTED_NEIGHBOR, omitted_addresses, schedule
    )
    if not isinstance(node_or_id, str) and node_or_id is not None:
        attack.install(node_or_id)
    return attack
