"""Adaptive adversaries: attacks that observe the detector and react.

Every other attack in :mod:`repro.attacks` is an *open-loop* policy — a drop
probability, a lie mode, a schedule — fixed when the scenario is built.  This
module closes the loop: an adaptive attack taps the detector's own trust
surface through a read-only :class:`TrustProbe` and adjusts its behaviour
once per detection cycle, modelling an adversary that knows (or estimates)
how the paper's trust system scores it and rides just above the
classification threshold.

Three pieces:

* :class:`TrustProbe` — the feedback surface: a read-only view of one
  observer's :meth:`~repro.trust.manager.TrustManager.trust_of` for one
  subject.  Probes are the *only* channel an adaptive attack gets; they
  cannot mutate trust state.
* :class:`AdaptiveAttack` — the capability mixin: ``bind_probe()`` plus an
  ``observe(now)`` hook the driving loop calls once per detection cycle
  (netsim: after every ``detection_round``; oracle: after every round).
* Concrete adversaries: :class:`ThresholdRidingGrayhole` (throttles its drop
  probability against the observed trust headroom) and
  :class:`RotatingLiarClique` (one active liar per epoch, the rest honest,
  starving the per-recommender bookkeeping).

:func:`run_drop_feedback_loop` is a self-contained watchdog-style harness
driving any drop attack against a :class:`~repro.trust.manager.TrustManager`
observer — the measurement rig behind the "time-to-detect vs adaptivity"
claims (and their tests): the same loop, fed a static grayhole or a
threshold rider, shows the rider surviving ≥ 2× longer at a matched
effective drop ratio.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.attacks.base import AttackSchedule
from repro.attacks.collusion import LiarClique
from repro.attacks.dropping import GrayholeAttack
from repro.trust.evidence import EvidenceKind, TrustEvidence
from repro.trust.manager import TrustManager, TrustParameters


class TrustProbe:
    """Read-only tap on one observer's trust table, for one subject.

    The probe captures only the ``trust_of`` bound method — never the
    manager itself — so an adaptive attack can *observe* how the detector
    scores it but has no handle to mutate trust state.  ``reads`` counts the
    taps, which the tests use to prove the feedback loop actually ran.
    """

    __slots__ = ("_trust_of", "subject", "reads")

    def __init__(self, trust_manager: TrustManager, subject: str) -> None:
        self._trust_of = trust_manager.trust_of
        self.subject = subject
        self.reads = 0

    def read(self) -> float:
        """The observer's current trust in the probed subject."""
        self.reads += 1
        return float(self._trust_of(self.subject))


class AdaptiveAttack:
    """Capability mixin of attacks that consume detector feedback.

    Mixed into a concrete :class:`~repro.attacks.base.Attack` subclass; the
    driving loop binds a :class:`TrustProbe` and calls :meth:`observe` once
    per detection cycle.  ``adaptation_log`` records every observation as
    ``(now, observed_trust, knob_value)`` so experiments can plot the policy
    trajectory.
    """

    def _init_adaptive(self, probe: Optional[TrustProbe] = None) -> None:
        self.probe = probe
        self.adaptation_log: List[Tuple[float, float, float]] = []

    def bind_probe(self, probe: TrustProbe) -> None:
        """Attach the feedback surface the policy reads each cycle."""
        self.probe = probe

    def observe(self, now: float) -> None:
        """Feedback hook, called once per detection cycle."""
        raise NotImplementedError


class ThresholdRidingGrayhole(GrayholeAttack, AdaptiveAttack):
    """Grayhole that paces its misconduct to ride the detection threshold.

    Each cycle the attacker reads its own trust as the victim sees it and
    rides a hysteresis band above the classification threshold:

    * trust at or below ``ride_threshold`` — the attack *pauses* (a manual
      ``deactivate``), relaying faithfully while the trust system's
      forgetting factor restores headroom;
    * trust back at ``resume_threshold`` — the attack resumes;
    * while active, the drop probability is additionally throttled between
      ``min_drop_probability`` and ``max_drop_probability`` proportionally
      to the headroom above ``ride_threshold`` (saturating at
      ``full_throttle_headroom``), so even the active windows back off as
      the margin thins.

    The pause windows keep :attr:`observed_drop_ratio` an *active-window*
    statistic (the base filter does not count paused traffic), which is what
    makes "matched effective drop ratio" comparisons against a static
    grayhole meaningful: both drop the same fraction of the traffic they
    attack; the rider merely picks its windows by watching its trust.
    """

    name = "threshold-grayhole"

    def __init__(
        self,
        max_drop_probability: float = 0.7,
        min_drop_probability: float = 0.0,
        ride_threshold: float = 0.3,
        resume_threshold: float = 0.38,
        full_throttle_headroom: float = 0.1,
        probe: Optional[TrustProbe] = None,
        message_types=None,
        victim_originators=None,
        schedule: Optional[AttackSchedule] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= min_drop_probability <= max_drop_probability <= 1.0:
            raise ValueError(
                "need 0 <= min_drop_probability <= max_drop_probability <= 1")
        if resume_threshold < ride_threshold:
            raise ValueError("resume_threshold must be >= ride_threshold")
        if full_throttle_headroom <= 0.0:
            raise ValueError("full_throttle_headroom must be positive")
        super().__init__(
            drop_probability=max_drop_probability,
            message_types=message_types,
            victim_originators=victim_originators,
            schedule=schedule,
            rng=rng,
        )
        self.max_drop_probability = max_drop_probability
        self.min_drop_probability = min_drop_probability
        self.ride_threshold = ride_threshold
        self.resume_threshold = resume_threshold
        self.full_throttle_headroom = full_throttle_headroom
        self.riding_paused = False
        self._init_adaptive(probe)

    def observe(self, now: float) -> None:
        if self.probe is None:
            return
        trust = self.probe.read()
        if self.riding_paused:
            if trust >= self.resume_threshold:
                self.riding_paused = False
                self.follow_schedule()
        elif trust <= self.ride_threshold:
            self.riding_paused = True
            self.deactivate()
        if not self.riding_paused:
            fraction = min(1.0, (trust - self.ride_threshold)
                           / self.full_throttle_headroom)
            self.drop_probability = (
                self.min_drop_probability
                + max(0.0, fraction)
                * (self.max_drop_probability - self.min_drop_probability))
        self.adaptation_log.append(
            (now, trust, 0.0 if self.riding_paused else self.drop_probability))

    def describe(self) -> dict:
        data = super().describe()
        data.update({
            "max_drop_probability": self.max_drop_probability,
            "min_drop_probability": self.min_drop_probability,
            "ride_threshold": self.ride_threshold,
            "resume_threshold": self.resume_threshold,
            "full_throttle_headroom": self.full_throttle_headroom,
            "riding_paused": self.riding_paused,
            "observations": len(self.adaptation_log),
        })
        return data


class RotatingLiarClique(LiarClique):
    """Clique whose *active* liar rotates per epoch; the rest stay honest.

    Per-recommender bookkeeping (:mod:`repro.trust.recommendation`) discounts
    a responder once it has disagreed with the majority often enough.  A
    rotating clique starves that counter: each member lies only once every
    ``len(members)`` epochs — below the rate at which disagreement evidence
    accumulates faster than it is forgotten — while every epoch still carries
    exactly one shielding answer.  The active member is the epoch-indexed
    entry of the sorted member roster, so rotation is deterministic and
    order-independent like the base clique's shared decision stream.
    """

    def member_decision(self, member_id: str, suspect: str, now: float) -> str:
        roster = sorted(m.member_id for m in self.members)
        if not roster:
            return self.decision(suspect, now)
        epoch = int(now // self.epoch_length)
        active = roster[epoch % len(roster)]
        if member_id != active:
            return "honest"
        return self.decision(suspect, now)

    def describe(self) -> dict:
        data = super().describe()
        data["name"] = "rotating-liar-clique"
        data["rotation"] = "one active member per epoch (sorted roster)"
        return data


# --------------------------------------------------------------------------
# Closed feedback loop: drop attack vs watchdog-style trust observer.
# --------------------------------------------------------------------------

class _LoopRouter:
    """Minimal forwarding substrate the feedback loop installs attacks on."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.forward_filters: list = []
        self.now = 0.0


@dataclass
class DropCycleRecord:
    """One detection cycle of the feedback loop."""

    cycle: int
    drops: int
    relays: int
    trust: float
    drop_probability: float


@dataclass
class DropLoopResult:
    """Outcome of :func:`run_drop_feedback_loop`."""

    records: List[DropCycleRecord] = field(default_factory=list)
    #: First cycle at which the observer's trust crossed the classification
    #: threshold (``None`` = the attacker survived the whole run).
    detected_cycle: Optional[int] = None

    def time_to_detect(self, horizon: Optional[int] = None) -> float:
        """Cycles until classification; undetected runs count as ``horizon``
        (default: the number of simulated cycles)."""
        if self.detected_cycle is not None:
            return float(self.detected_cycle + 1)
        return float(horizon if horizon is not None else len(self.records))

    @property
    def effective_drop_ratio(self) -> float:
        """Fraction of relay opportunities actually dropped over the run."""
        drops = sum(r.drops for r in self.records)
        total = sum(r.drops + r.relays for r in self.records)
        return drops / total if total else 0.0


def run_drop_feedback_loop(
    attack: GrayholeAttack,
    cycles: int = 40,
    opportunities: int = 20,
    classification_threshold: float = 0.25,
    trust_parameters: Optional[TrustParameters] = None,
    observer: str = "victim",
    attacker: str = "attacker",
) -> DropLoopResult:
    """Drive a (possibly adaptive) drop attack against a watchdog observer.

    Each of the ``cycles`` detection cycles offers the installed attack
    ``opportunities`` relay opportunities through its real forward filter;
    the observer converts the observed drop/relay counts into
    ``TRAFFIC_DROPPED``/``TRAFFIC_RELAYED`` evidence, runs one Eq. 5 slot,
    and — when the attack is adaptive — feeds the new trust value back
    through a read-only :class:`TrustProbe`.  The attacker counts as
    detected on the first cycle its trust reaches
    ``classification_threshold``.
    """
    trust = TrustManager(observer, trust_parameters)
    router = _LoopRouter(attacker)
    attack.install(router)
    if isinstance(attack, AdaptiveAttack) and attack.probe is None:
        attack.bind_probe(TrustProbe(trust, attacker))

    result = DropLoopResult()
    for cycle in range(cycles):
        router.now = float(cycle)
        drops = relays = 0
        for _ in range(opportunities):
            if attack._filter(None, observer, router):
                relays += 1
            else:
                drops += 1
        evidences = []
        if drops:
            evidences.append(TrustEvidence(
                observer=observer, subject=attacker,
                kind=EvidenceKind.TRAFFIC_DROPPED,
                value=-drops / opportunities, timestamp=float(cycle)))
        if relays:
            evidences.append(TrustEvidence(
                observer=observer, subject=attacker,
                kind=EvidenceKind.TRAFFIC_RELAYED,
                value=relays / opportunities, timestamp=float(cycle)))
        trust.update(attacker, evidences, now=float(cycle))
        value = trust.trust_of(attacker)
        if isinstance(attack, AdaptiveAttack):
            attack.observe(float(cycle))
        result.records.append(DropCycleRecord(
            cycle=cycle, drops=drops, relays=relays, trust=value,
            drop_probability=attack.drop_probability))
        if result.detected_cycle is None and value <= classification_threshold:
            result.detected_cycle = cycle
    return result
