"""Differential validation: the oracle and netsim backends must agree.

The engine's two execution substrates implement the same trust/detection
process at very different fidelities: the ``"oracle"`` backend runs the
paper's idealised round loop, the ``"netsim"`` backend the full OLSR MANET.
After three PRs of engine refactoring the biggest remaining risk is *silent
divergence* — a seeding or semantics bug that makes one backend quietly
simulate a different scenario than the other.  The differential harness
runs one parameter set on both backends and compares summary metrics within
**declared tolerances**:

* the backends share the scenario process only for the paper's
  link-spoofing + independent-liar threat (richer compositions are
  netsim-only and validated structurally instead), so comparisons run with
  ``threat="link-spoofing"``;
* the tolerances are wide enough for legitimate fidelity differences
  (queries that physically fail to reach responders, investigation cycles
  the netsim victim skips) and tight enough to catch sign errors, runaway
  trust updates and decorrelated seeding — the failure modes refactors
  actually produce.

Comparability note: run differential specs with
``random_initial_trust=False`` so both backends start every node at the
default trust instead of backend-specific random draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.experiments.backends import run_netsim_cell, run_oracle_cell
from repro.experiments.config import ScenarioConfig
from repro.experiments.rounds import ExperimentResult

#: Declared absolute tolerances per compared metric.
#:
#: The per-verdict *step* metrics are the sharp checks: both backends apply
#: the identical Eq. 5 update per investigation verdict, so the mean trust
#: delta per guilty (resp. innocent) verdict must match within roughly one
#: evidence weight — decorrelated seeding, swapped alphas or a skipped
#: clamp blow straight through these.  The *level* metrics are deliberately
#: coarse guards: the backends legitimately differ in how many
#: investigations fire (the netsim victim needs an E1 trigger; mobility can
#: even turn a spoofed link true, flipping the ground truth), so absolute
#: trust levels may drift apart by several update steps without any bug —
#: but runaway or wrong-direction dynamics still cross these bounds.
DEFAULT_TOLERANCES: Mapping[str, float] = {
    "first_guilty_step_attacker": 0.2,
    "first_innocent_step_attacker": 0.12,
    "final_attacker_trust": 0.6,
    "mean_honest_trust": 0.25,
    "max_trust_spread": 0.65,
}


@dataclass(frozen=True)
class MetricComparison:
    """One compared metric of a differential run."""

    metric: str
    oracle: Optional[float]
    netsim: Optional[float]
    tolerance: float
    #: False when a side produced no value (e.g. the netsim victim never
    #: investigated the attacker) — incomparable, not a disagreement.
    comparable: bool

    @property
    def difference(self) -> Optional[float]:
        """Absolute difference, when both sides produced a value."""
        if not self.comparable:
            return None
        return abs(self.oracle - self.netsim)

    @property
    def within(self) -> bool:
        """Whether the comparison is inside its declared tolerance."""
        if not self.comparable:
            return True
        return self.difference <= self.tolerance


@dataclass
class DifferentialResult:
    """Outcome of one oracle↔netsim differential run."""

    seed: int
    params: Dict[str, object]
    comparisons: List[MetricComparison] = field(default_factory=list)
    oracle_metrics: Dict[str, Optional[float]] = field(default_factory=dict)
    netsim_metrics: Dict[str, Optional[float]] = field(default_factory=dict)

    def disagreements(self) -> List[MetricComparison]:
        """Comparisons outside their declared tolerance."""
        return [c for c in self.comparisons if not c.within]

    @property
    def ok(self) -> bool:
        """Whether every comparison is inside tolerance."""
        return not self.disagreements()


def summary_metrics(result: ExperimentResult) -> Dict[str, Optional[float]]:
    """Backend-independent summary metrics of one run.

    Level metrics read the investigator's final trust snapshot (nodes the
    snapshot does not mention sit at the default trust, which is what the
    trust manager would answer).  The step metrics take the attacker's
    trust delta across its *first* round with each verdict sign
    (``detect < 0``: misbehaviour observed per Eq. 9; ``detect > 0``:
    cleared) — the first step, because both backends start the attacker at
    the same trust there, whereas later steps saturate against the trust
    floor and would dilute a broken update rule out of sight.
    """
    default = result.config.trust.default_trust
    attacker = result.attacker

    first_guilty: Optional[float] = None
    first_innocent: Optional[float] = None
    previous = result.initial_trust.get(attacker, default)
    snapshot: Dict[str, float] = dict(result.initial_trust)
    for record in result.rounds:
        if record.trust_snapshot:
            snapshot = record.trust_snapshot
        current = snapshot.get(attacker, default)
        if record.detect_value is not None:
            if record.detect_value < 0.0 and first_guilty is None:
                first_guilty = current - previous
            elif record.detect_value > 0.0 and first_innocent is None:
                first_innocent = current - previous
        previous = current

    def final(node: str) -> float:
        return snapshot.get(node, default)

    def mean(values: List[float]) -> Optional[float]:
        if not values:
            return None
        return sum(values) / len(values)

    values = [final(n) for n in sorted(result.responders | {attacker})]
    return {
        "first_guilty_step_attacker": first_guilty,
        "first_innocent_step_attacker": first_innocent,
        "final_attacker_trust": final(attacker),
        "mean_honest_trust": mean([final(n) for n in sorted(result.honest_responders)]),
        "max_trust_spread": (max(values) - min(values)) if values else None,
        "investigated": 1.0 if result.detect_values() else 0.0,
    }


def compare_metrics(
    oracle_metrics: Mapping[str, Optional[float]],
    netsim_metrics: Mapping[str, Optional[float]],
    tolerances: Optional[Mapping[str, float]] = None,
) -> List[MetricComparison]:
    """Compare two metric dicts under the declared tolerances.

    Trust-trajectory metrics are only comparable when *both* backends
    actually ran investigations — a netsim run whose victim never
    investigated the attacker carries no evidence either way.
    """
    tolerances = tolerances or DEFAULT_TOLERANCES
    both_investigated = bool(oracle_metrics.get("investigated")) and bool(
        netsim_metrics.get("investigated"))
    comparisons: List[MetricComparison] = []
    for metric, tolerance in sorted(tolerances.items()):
        oracle = oracle_metrics.get(metric)
        netsim = netsim_metrics.get(metric)
        comparable = (
            both_investigated
            and oracle is not None and netsim is not None
            and not math.isnan(oracle) and not math.isnan(netsim)
        )
        comparisons.append(MetricComparison(
            metric=metric,
            oracle=oracle,
            netsim=netsim,
            tolerance=tolerance,
            comparable=comparable,
        ))
    return comparisons


def run_differential(
    params: Mapping[str, object],
    seed: int,
    tolerances: Optional[Mapping[str, float]] = None,
    netsim_result: Optional[ExperimentResult] = None,
) -> DifferentialResult:
    """Run one parameter set on both backends and compare the metrics.

    ``params`` uses the engine's flat parameter vocabulary (ScenarioConfig
    fields + netsim knobs).  Pass ``netsim_result`` to reuse an
    already-executed netsim run (the fuzzing harness audits the netsim run
    for invariants first and feeds it in here, so each sample simulates the
    MANET once).
    """
    from repro.experiments.backends import scenario_config_from_params

    config: ScenarioConfig = scenario_config_from_params(params, seed)
    oracle_result = run_oracle_cell(config)
    if netsim_result is None:
        netsim_result = run_netsim_cell(config, params)
    oracle_metrics = summary_metrics(oracle_result)
    netsim_metrics = summary_metrics(netsim_result)
    return DifferentialResult(
        seed=seed,
        params=dict(params),
        comparisons=compare_metrics(oracle_metrics, netsim_metrics, tolerances),
        oracle_metrics=oracle_metrics,
        netsim_metrics=netsim_metrics,
    )
