"""Differential validation harness: prove the two backends agree.

Three layers, all driven by ``python -m repro.experiments validate``:

* :mod:`repro.validation.invariants` — structural invariant checkers over
  netsim runs (delivery range, RFC 3626 MPR coverage, trust bounds,
  duplicate-table suppression) and the :class:`ScenarioAuditor` that wires
  them to a built scenario.
* :mod:`repro.validation.differential` — run one parameter set on both the
  ``oracle`` and ``netsim`` backends and compare summary metrics within
  declared tolerances.
* :mod:`repro.validation.fuzz` — the campaign driver: fuzz N seeded
  scenario profiles, invariant-check and cross-check each, and report
  failures with minimized CLI reproducers.

See ``repro/scenarios/__init__.py`` for how to add a scenario profile or a
new invariant.
"""

from repro.validation.differential import (
    DEFAULT_TOLERANCES,
    DifferentialResult,
    MetricComparison,
    compare_metrics,
    run_differential,
    summary_metrics,
)
from repro.validation.fuzz import (
    ValidationIssue,
    ValidationReport,
    minimize_params,
    validate_corpus,
)
from repro.validation.invariants import (
    ALL_INVARIANTS,
    InvariantViolation,
    ScenarioAuditor,
    check_delivery_range,
    check_duplicate_suppression,
    check_mpr_coverage,
    check_trust_bounds,
)

__all__ = [
    "ALL_INVARIANTS",
    "DEFAULT_TOLERANCES",
    "DifferentialResult",
    "InvariantViolation",
    "MetricComparison",
    "ScenarioAuditor",
    "ValidationIssue",
    "ValidationReport",
    "check_delivery_range",
    "check_duplicate_suppression",
    "check_mpr_coverage",
    "check_trust_bounds",
    "compare_metrics",
    "minimize_params",
    "run_differential",
    "summary_metrics",
    "validate_corpus",
]
