"""Fuzzing campaign: invariants + differential checks over a seeded corpus.

``validate_corpus`` drives the whole validation subsystem: it asks the
scenario fuzzer (:mod:`repro.scenarios.fuzzer`) for ``count`` samples, runs
every sample on the netsim backend under a :class:`~repro.validation.
invariants.ScenarioAuditor`, cross-checks the differential-eligible samples
against the oracle backend, and — when something fails — *minimizes* the
failing parameter set with a greedy shrinker so the report names the
smallest scenario still exhibiting the problem, as a copy-pastable CLI
reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.backends import (
    build_netsim_scenario,
    drive_netsim_scenario,
    scenario_config_from_params,
)
from repro.scenarios import ScenarioFuzzer, apply_profile, reproducer_command
from repro.validation.differential import (
    DEFAULT_TOLERANCES,
    DifferentialResult,
    run_differential,
)
from repro.validation.invariants import InvariantViolation, ScenarioAuditor

#: Greedy shrink steps, in the order they are attempted.  Each maps a
#: parameter dict to a "simpler" one; a step is kept only when the failure
#: persists without it, so minimization never loses the bug.
SHRINK_STEPS: Sequence[Tuple[str, Dict[str, object]]] = (
    ("lossless channel", {"loss_model": "bernoulli", "loss_probability": 0.0}),
    ("static nodes", {"mobility_model": "static", "max_speed": 0.0}),
    ("base threat", {"threat": "link-spoofing"}),
    ("no liars", {"liar_count": 0}),
    ("small population", {"total_nodes": 8}),
)


@dataclass(frozen=True)
class ValidationIssue:
    """One validation failure, with its minimized reproducer."""

    kind: str  # "invariant" | "differential"
    sample: str  # fuzz sample run id
    detail: str
    reproducer: str

    def __str__(self) -> str:
        return f"{self.kind} failure in {self.sample}: {self.detail}\n  reproduce: {self.reproducer}"


@dataclass
class ValidationReport:
    """Outcome of one fuzzing campaign."""

    samples: int = 0
    invariant_runs: int = 0
    differential_runs: int = 0
    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the whole corpus validated cleanly."""
        return not self.issues

    def format_report(self) -> str:
        """Deterministic plain-text report of the campaign."""
        lines = [
            "Validation campaign",
            f"  fuzzed samples:        {self.samples}",
            f"  invariant-checked:     {self.invariant_runs}",
            f"  differential-checked:  {self.differential_runs}",
            f"  issues:                {len(self.issues)}",
        ]
        for issue in self.issues:
            lines.append("")
            lines.append(str(issue))
        if self.ok:
            lines.append("  all invariants hold; oracle and netsim agree within tolerances")
        return "\n".join(lines)


def _reproducer(params: Mapping[str, object], seed: int) -> str:
    """A fully-explicit CLI line re-running one netsim cell."""
    explicit = {name: value for name, value in params.items()
                if name != "profile"}  # the expanded parameters say it all
    return reproducer_command(explicit, seed)


def _netsim_violations(params: Mapping[str, object],
                       seed: int) -> List[InvariantViolation]:
    """Run one netsim cell under the auditor; return its violations."""
    config = scenario_config_from_params(params, seed)
    scenario = build_netsim_scenario(config, params)
    auditor = ScenarioAuditor(scenario)
    drive_netsim_scenario(scenario, config, params)
    return auditor.check_all()


def minimize_params(
    params: Mapping[str, object],
    seed: int,
    still_fails,
) -> Dict[str, object]:
    """Greedy parameter shrinker.

    ``still_fails(params)`` re-runs the check on a candidate parameter set;
    each :data:`SHRINK_STEPS` simplification is kept only when the failure
    persists.  At most ``len(SHRINK_STEPS)`` re-runs.
    """
    current = dict(params)
    for _label, overrides in SHRINK_STEPS:
        if all(current.get(k) == v for k, v in overrides.items()):
            continue
        candidate = dict(current)
        candidate.update(overrides)
        try:
            if still_fails(candidate):
                current = candidate
        except Exception:
            continue  # a shrink that crashes the run is not a simplification
    return current


def validate_corpus(
    count: int,
    base_seed: int = 0,
    profiles: Optional[Sequence[str]] = None,
    tolerances: Optional[Mapping[str, float]] = None,
    minimize: bool = True,
    protocols: Optional[Sequence[str]] = None,
    medium: str = "batch",
) -> ValidationReport:
    """Fuzz ``count`` scenarios and validate every one of them.

    Every sample is invariant-checked on the netsim backend; samples whose
    profile is differential-eligible are additionally cross-checked against
    the oracle backend (reusing the already-simulated netsim run, so each
    sample costs one MANET simulation).  ``protocols`` turns the routing
    backend into a fuzzed axis (see :class:`~repro.scenarios.fuzzer.
    ScenarioFuzzer`); non-OLSR samples are invariant-checked only, since
    the oracle models the OLSR link-spoofing process.  Failures are
    minimized (when ``minimize``) and reported with explicit CLI
    reproducers.

    ``medium`` selects the wireless-medium delivery path audited:
    ``"batch"`` (the default batched broadcast fast path), ``"scalar"``
    (per-receiver events), or ``"both"``, which runs the invariant auditor
    once per path on every sample.  The oracle differential runs once per
    sample regardless, against the first audited path.
    """
    if medium not in ("batch", "scalar", "both"):
        raise ValueError(f"medium must be batch, scalar or both, got {medium!r}")
    batch_modes = {"batch": (True,), "scalar": (False,), "both": (True, False)}[medium]
    tolerances = tolerances or DEFAULT_TOLERANCES
    fuzzer = ScenarioFuzzer(base_seed, profiles, protocols=protocols)
    report = ValidationReport(samples=count)

    for sample in fuzzer.corpus(count):
        params = apply_profile(sample.params_dict())
        config = scenario_config_from_params(params, sample.seed)
        netsim_result = None
        violations = []
        for batch_mode in batch_modes:
            mode_params = dict(params)
            mode_params["batch_delivery"] = batch_mode
            scenario = build_netsim_scenario(config, mode_params)
            auditor = ScenarioAuditor(scenario)
            result = drive_netsim_scenario(scenario, config, mode_params)
            violations += auditor.check_all()
            report.invariant_runs += 1
            if netsim_result is None:
                netsim_result = result

        if violations:
            failing = dict(params)
            if minimize:
                broken = {v.invariant for v in violations}

                def _still(candidate, _broken=broken):
                    found = _netsim_violations(candidate, sample.seed)
                    return bool(_broken & {v.invariant for v in found})

                failing = minimize_params(params, sample.seed, _still)
            for violation in violations:
                report.issues.append(ValidationIssue(
                    kind="invariant",
                    sample=sample.run_id(),
                    detail=str(violation),
                    reproducer=_reproducer(failing, sample.seed),
                ))

        if sample.differential:
            differential = run_differential(
                params, sample.seed, tolerances=tolerances,
                netsim_result=netsim_result,
            )
            report.differential_runs += 1
            if not differential.ok:
                failing = dict(params)
                if minimize:
                    broken = {c.metric for c in differential.disagreements()}

                    def _still(candidate, _broken=broken):
                        result = run_differential(candidate, sample.seed,
                                                  tolerances=tolerances)
                        return bool(_broken & {c.metric
                                               for c in result.disagreements()})

                    failing = minimize_params(params, sample.seed, _still)
                for comparison in differential.disagreements():
                    report.issues.append(ValidationIssue(
                        kind="differential",
                        sample=sample.run_id(),
                        detail=(f"{comparison.metric}: oracle={comparison.oracle!r} "
                                f"netsim={comparison.netsim!r} "
                                f"|Δ|={comparison.difference:.4f} "
                                f"> tolerance {comparison.tolerance}"),
                        reproducer=_reproducer(failing, sample.seed),
                    ))

    report.issues.sort(key=lambda issue: (issue.kind, issue.sample, issue.detail))
    return report
