"""Structural invariant checkers over simulated MANET runs.

An invariant is a property every correct run must satisfy regardless of the
scenario: the medium never delivers a frame beyond the sender's radio range,
every node's MPR set covers its strict 2-hop neighbourhood (RFC 3626
§8.3.1), trust and recommendation values stay inside their declared bounds,
and the duplicate table never lets a node relay the same flooded message
twice.  The checkers run *after* a simulation against its live state — they
are read-only — and return :class:`InvariantViolation` records instead of
raising, so a fuzzing campaign can collect every violation of a corpus.

Usage::

    auditor = ScenarioAuditor(scenario)   # BEFORE running the simulation
    ...run...
    violations = auditor.check_all()

:class:`ScenarioAuditor` installs the medium's delivery-trace recorder (the
range invariant audits the positions each delivery decision actually used)
and bundles every registered checker; the individual ``check_*`` functions
are importable on their own and shared with the golden protocol tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.logs.records import LogCategory
from repro.netsim.trace import TraceRecorder
from repro.olsr.mpr import mpr_coverage_complete
from repro.trust.manager import TrustManager

#: Relative slack of the delivery-range check: pure float tolerance, not a
#: physical allowance — the medium compared the exact same euclidean
#: distance against the exact same range.
RANGE_SLACK = 1e-9


@dataclass(frozen=True)
class InvariantViolation:
    """One observed violation of a structural invariant."""

    invariant: str
    node: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.node}: {self.detail}"


# ------------------------------------------------------------------ checkers
def check_delivery_range(scenario, recorder: TraceRecorder,
                         limit: Optional[int] = None) -> List[InvariantViolation]:
    """No frame is delivered beyond the sender's transmit range.

    ``recorder`` must have been installed as the medium's delivery auditor
    *before* the run (see :class:`ScenarioAuditor`); each ``FRAME_DELIVERED``
    event carries the sender/receiver positions and the range the medium's
    own in-range decision used.
    """
    violations: List[InvariantViolation] = []
    events = recorder.by_category("medium")
    if limit is not None:
        events = events[:limit]
    for event in events:
        tx_range = event.data.get("tx_range")
        if tx_range is None:
            continue
        sx, sy = event.data["sender_pos"]
        rx, ry = event.data["receiver_pos"]
        dist = math.hypot(sx - rx, sy - ry)
        if dist > tx_range * (1.0 + RANGE_SLACK):
            violations.append(InvariantViolation(
                invariant="delivery-range",
                node=event.node,
                detail=(f"frame from {event.data.get('source')} delivered at "
                        f"distance {dist:.3f} > range {tx_range:.3f} "
                        f"(t={event.time:.3f})"),
            ))
    return violations


def check_mpr_coverage(scenario) -> List[InvariantViolation]:
    """MPR selection covers the strict 2-hop neighbourhood (RFC 3626 §8.3.1).

    The checker re-runs :func:`~repro.olsr.mpr.select_mprs` on each node's
    *live* information repositories — exactly what the node itself would
    compute next — and asserts the coverage property of the result: every
    strict 2-hop address reachable through some willing symmetric neighbour
    must be covered by the selected MPR set (addresses the selection itself
    reports as provider-less are exempt; they are legitimately unreachable).

    The node's *stored* ``mpr_set`` is deliberately not compared: links
    expire passively between housekeeping runs, so a snapshot taken inside
    that window is stale by design (an OLSR liveness property bounded by
    the HELLO interval), and flagging it would make the invariant racy on
    every lossy or mobile scenario.  Selection correctness, which E1
    depends on, is what this invariant pins down — on every topology the
    fuzzer can manufacture.
    """
    from repro.olsr.mpr import select_mprs

    violations: List[InvariantViolation] = []
    for node_id, node in sorted(scenario.nodes.items()):
        olsr = getattr(node, "olsr", node)
        if not hasattr(olsr, "two_hop_set"):
            continue  # MPR coverage is an OLSR property; other backends skip
        symmetric = olsr.symmetric_neighbors()
        willingness = {n.neighbor_address: n.willingness for n in olsr.neighbor_set}
        coverage: Dict[str, Set[str]] = olsr.two_hop_set.coverage_map()
        result = select_mprs(
            symmetric_neighbors=symmetric,
            coverage=coverage,
            willingness=willingness,
            local_address=node_id,
        )
        strict_two_hop: Set[str] = set()
        for neighbor in symmetric:
            strict_two_hop |= {
                address for address in coverage.get(neighbor, set())
                if address not in symmetric and address not in (node_id, neighbor)
            }
        required = strict_two_hop - result.uncovered
        if mpr_coverage_complete(result.mprs, result.coverage, required):
            continue
        covered: Set[str] = set()
        for mpr in result.mprs:
            covered |= result.coverage.get(mpr, set())
        missing = sorted(required - covered)
        violations.append(InvariantViolation(
            invariant="mpr-coverage",
            node=node_id,
            detail=(f"selected MPR set {sorted(result.mprs)} leaves 2-hop "
                    f"neighbours {missing} uncovered"),
        ))
    return violations


def check_trust_bounds(scenario) -> List[InvariantViolation]:
    """Trust and recommendation values stay inside their declared bounds.

    The trust system's update rule (Eq. 5) clamps into
    ``[minimum, maximum]``; any value outside — or outside the paper's
    global [0, 1] scale — means an update path skipped the clamp.
    """
    violations: List[InvariantViolation] = []
    for node_id, node in sorted(scenario.nodes.items()):
        trust: Optional[TrustManager] = getattr(node, "trust", None)
        if trust is not None:
            params = trust.parameters
            low = max(0.0, params.minimum)
            high = min(1.0, params.maximum)
            for subject, value in sorted(trust.as_dict().items()):
                if not (low - 1e-12 <= value <= high + 1e-12) or math.isnan(value):
                    violations.append(InvariantViolation(
                        invariant="trust-bounds",
                        node=node_id,
                        detail=f"trust of {subject} is {value!r}, outside [{low}, {high}]",
                    ))
        recommendations = getattr(node, "recommendations", None)
        if recommendations is not None:
            for subject, value in sorted(recommendations.as_dict().items()):
                if not (0.0 - 1e-12 <= value <= 1.0 + 1e-12) or math.isnan(value):
                    violations.append(InvariantViolation(
                        invariant="trust-bounds",
                        node=node_id,
                        detail=f"recommendation trust of {subject} is {value!r}",
                    ))
    return violations


def check_duplicate_suppression(scenario) -> List[InvariantViolation]:
    """No node relays the same flooded message twice.

    RFC 3626 §3.4: the duplicate table must stop a message already
    forwarded from being retransmitted when another copy arrives over a
    different path.  The audit log records every relay with the message's
    (originator, sequence number) pair, which must therefore be unique per
    node.
    """
    violations: List[InvariantViolation] = []
    for node_id, node in sorted(scenario.nodes.items()):
        olsr = getattr(node, "olsr", node)
        seen: Set[Tuple[str, str]] = set()
        for record in olsr.log.by_category(LogCategory.FORWARD):
            if record.event != "RELAYED":
                continue
            seq = record.get("seq")
            origin = record.get("origin")
            if seq is None or origin is None:
                continue  # data-plane relays carry no OLSR sequence number
            key = (origin, seq)
            if key in seen:
                violations.append(InvariantViolation(
                    invariant="duplicate-suppression",
                    node=node_id,
                    detail=f"message ({origin}, seq {seq}) relayed more than once",
                ))
            seen.add(key)
    return violations


#: Checkers that need only the finished scenario.  The delivery-range check
#: additionally needs the auditor's recorder, so it is wired separately in
#: :class:`ScenarioAuditor`.
ALL_INVARIANTS: Dict[str, Callable[[object], List[InvariantViolation]]] = {
    "mpr-coverage": check_mpr_coverage,
    "trust-bounds": check_trust_bounds,
    "duplicate-suppression": check_duplicate_suppression,
}


class ScenarioAuditor:
    """Attach every invariant to one built scenario.

    Construct the auditor *before* running the simulation: it installs the
    medium's delivery-trace recorder so the range invariant can audit every
    delivery.  ``max_trace_events`` bounds the recorder's memory; when the
    bound trims the trace only the retained deliveries are checked.
    """

    def __init__(self, scenario, max_trace_events: int = 200_000) -> None:
        self.scenario = scenario
        self.recorder = TraceRecorder(max_events=max_trace_events)
        scenario.network.medium.trace_recorder = self.recorder

    def check_all(self) -> List[InvariantViolation]:
        """Run every invariant; violations sorted for stable reports."""
        violations = check_delivery_range(self.scenario, self.recorder)
        for checker in ALL_INVARIANTS.values():
            violations.extend(checker(self.scenario))
        return sorted(violations, key=lambda v: (v.invariant, v.node, v.detail))
