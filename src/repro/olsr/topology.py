"""Topology information base built from TC messages (RFC 3626 §9.5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple


@dataclass
class TopologyTuple:
    """One advertised topology edge: ``last_address`` can reach ``destination_address``."""

    destination_address: str
    last_address: str
    ansn: int
    expiry_time: float = 0.0

    def is_expired(self, now: float) -> bool:
        """Whether the tuple should be discarded."""
        return self.expiry_time < now


class TopologySet:
    """Collection of :class:`TopologyTuple` keyed by (destination, last hop).

    ``version`` counts structural (key set) changes only: the routing
    computation reads nothing but the keys, so ANSN/expiry refreshes of
    existing edges leave it untouched and the node can skip route
    recomputations whose inputs did not change.
    """

    def __init__(self) -> None:
        self._tuples: Dict[Tuple[str, str], TopologyTuple] = {}
        self._latest_ansn: Dict[str, int] = {}
        self.version = 0
        # Secondary index: originator -> its keys (insertion-ordered).  TC
        # processing and originator removal would otherwise scan the whole
        # tuple table per message, which dominates at 1,024-node scale.
        self._keys_by_originator: Dict[str, Dict[Tuple[str, str], None]] = {}
        # Routing-view cache, invalidated by ``version`` (key-set changes):
        # destinations in sorted order, each with its advertisers sorted.
        self._routing_view: Optional[
            Tuple[int, List[Tuple[str, Sequence[str]]]]] = None

    # ---------------------------------------------------------------- update
    def process_tc(
        self,
        originator: str,
        ansn: int,
        advertised: Set[str],
        now: float,
        hold_time: float,
    ) -> bool:
        """Apply a TC message from ``originator``.

        Implements the RFC freshness rule: a TC whose ANSN is older than the
        freshest one already recorded for the originator is ignored.  Returns
        ``True`` when the topology set was modified.
        """
        latest = self._latest_ansn.get(originator)
        if latest is not None and _ansn_older(ansn, latest):
            return False
        self._latest_ansn[originator] = ansn

        changed = False
        # Remove tuples from this originator with an older ANSN (via the
        # per-originator index: only this originator's keys are scanned).
        own_keys = self._keys_by_originator.get(originator, {})
        stale = [
            key for key in own_keys
            if _ansn_older(self._tuples[key].ansn, ansn)
        ]
        for key in stale:
            self._discard(key)
            changed = True

        for destination in advertised:
            key = (destination, originator)
            existing = self._tuples.get(key)
            if existing is None:
                changed = True
                self._keys_by_originator.setdefault(originator, {})[key] = None
            self._tuples[key] = TopologyTuple(
                destination_address=destination,
                last_address=originator,
                ansn=ansn,
                expiry_time=now + hold_time,
            )
        if changed:
            self.version += 1
        return changed

    def _discard(self, key: Tuple[str, str]) -> None:
        """Remove one tuple and its index entry (key must be present)."""
        del self._tuples[key]
        originator_keys = self._keys_by_originator.get(key[1])
        if originator_keys is not None:
            originator_keys.pop(key, None)
            if not originator_keys:
                del self._keys_by_originator[key[1]]

    def remove_for_originator(self, originator: str) -> None:
        """Drop every edge advertised by ``originator``."""
        stale = list(self._keys_by_originator.get(originator, ()))
        for key in stale:
            self._discard(key)
        if stale:
            self.version += 1

    def purge_expired(self, now: float) -> List[TopologyTuple]:
        """Drop expired tuples; returns the removed ones."""
        expired = [t for t in self._tuples.values() if t.is_expired(now)]
        for record in expired:
            self._discard((record.destination_address, record.last_address))
        if expired:
            self.version += 1
        return expired

    # ---------------------------------------------------------- routing view
    def routing_view(self) -> List[Tuple[str, Sequence[str]]]:
        """Destinations with their advertisers, both in sorted order.

        This is exactly the traversal order of a ``sorted(topology_set,
        key=(destination, last))`` scan, pre-grouped by destination so the
        routing calculation can skip already-routed destinations wholesale.
        Cached on ``version``: ANSN/expiry refreshes keep the key set — and
        therefore this view — unchanged.
        """
        cached = self._routing_view
        if cached is not None and cached[0] == self.version:
            return cached[1]
        view: List[Tuple[str, List[str]]] = []
        for destination, last in sorted(self._tuples):
            if view and view[-1][0] == destination:
                view[-1][1].append(last)
            else:
                view.append((destination, [last]))
        self._routing_view = (self.version, view)
        return view

    # --------------------------------------------------------------- queries
    def edges(self) -> List[Tuple[str, str]]:
        """All (last_address, destination_address) directed edges."""
        return [(t.last_address, t.destination_address) for t in self._tuples.values()]

    def destinations(self) -> Set[str]:
        """All advertised destination addresses."""
        return {t.destination_address for t in self._tuples.values()}

    def last_hops_for(self, destination: str) -> Set[str]:
        """Nodes advertising reachability to ``destination``."""
        return {
            t.last_address
            for t in self._tuples.values()
            if t.destination_address == destination
        }

    def advertised_by(self, last_address: str) -> Set[str]:
        """Destinations advertised by ``last_address``."""
        return {
            t.destination_address
            for t in self._tuples.values()
            if t.last_address == last_address
        }

    def get(self, destination: str, last_address: str) -> Optional[TopologyTuple]:
        """Specific tuple (None when absent)."""
        return self._tuples.get((destination, last_address))

    def __iter__(self):
        return iter(self._tuples.values())

    def __len__(self) -> int:
        return len(self._tuples)


def _ansn_older(candidate: int, reference: int, window: int = 32768) -> bool:
    """Sequence-number comparison with wrap-around (RFC §19)."""
    return (reference > candidate and reference - candidate <= window) or (
        candidate > reference and candidate - reference > window
    )
