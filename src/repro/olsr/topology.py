"""Topology information base built from TC messages (RFC 3626 §9.5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class TopologyTuple:
    """One advertised topology edge: ``last_address`` can reach ``destination_address``."""

    destination_address: str
    last_address: str
    ansn: int
    expiry_time: float = 0.0

    def is_expired(self, now: float) -> bool:
        """Whether the tuple should be discarded."""
        return self.expiry_time < now


class TopologySet:
    """Collection of :class:`TopologyTuple` keyed by (destination, last hop)."""

    def __init__(self) -> None:
        self._tuples: Dict[Tuple[str, str], TopologyTuple] = {}
        self._latest_ansn: Dict[str, int] = {}

    # ---------------------------------------------------------------- update
    def process_tc(
        self,
        originator: str,
        ansn: int,
        advertised: Set[str],
        now: float,
        hold_time: float,
    ) -> bool:
        """Apply a TC message from ``originator``.

        Implements the RFC freshness rule: a TC whose ANSN is older than the
        freshest one already recorded for the originator is ignored.  Returns
        ``True`` when the topology set was modified.
        """
        latest = self._latest_ansn.get(originator)
        if latest is not None and _ansn_older(ansn, latest):
            return False
        self._latest_ansn[originator] = ansn

        changed = False
        # Remove tuples from this originator with an older ANSN.
        stale = [
            key
            for key, record in self._tuples.items()
            if record.last_address == originator and _ansn_older(record.ansn, ansn)
        ]
        for key in stale:
            del self._tuples[key]
            changed = True

        for destination in advertised:
            key = (destination, originator)
            existing = self._tuples.get(key)
            if existing is None:
                changed = True
            self._tuples[key] = TopologyTuple(
                destination_address=destination,
                last_address=originator,
                ansn=ansn,
                expiry_time=now + hold_time,
            )
        return changed

    def remove_for_originator(self, originator: str) -> None:
        """Drop every edge advertised by ``originator``."""
        stale = [key for key, rec in self._tuples.items() if rec.last_address == originator]
        for key in stale:
            del self._tuples[key]

    def purge_expired(self, now: float) -> List[TopologyTuple]:
        """Drop expired tuples; returns the removed ones."""
        expired = [t for t in self._tuples.values() if t.is_expired(now)]
        for record in expired:
            del self._tuples[(record.destination_address, record.last_address)]
        return expired

    # --------------------------------------------------------------- queries
    def edges(self) -> List[Tuple[str, str]]:
        """All (last_address, destination_address) directed edges."""
        return [(t.last_address, t.destination_address) for t in self._tuples.values()]

    def destinations(self) -> Set[str]:
        """All advertised destination addresses."""
        return {t.destination_address for t in self._tuples.values()}

    def last_hops_for(self, destination: str) -> Set[str]:
        """Nodes advertising reachability to ``destination``."""
        return {
            t.last_address
            for t in self._tuples.values()
            if t.destination_address == destination
        }

    def advertised_by(self, last_address: str) -> Set[str]:
        """Destinations advertised by ``last_address``."""
        return {
            t.destination_address
            for t in self._tuples.values()
            if t.last_address == last_address
        }

    def get(self, destination: str, last_address: str) -> Optional[TopologyTuple]:
        """Specific tuple (None when absent)."""
        return self._tuples.get((destination, last_address))

    def __iter__(self):
        return iter(self._tuples.values())

    def __len__(self) -> int:
        return len(self._tuples)


def _ansn_older(candidate: int, reference: int, window: int = 32768) -> bool:
    """Sequence-number comparison with wrap-around (RFC §19)."""
    return (reference > candidate and reference - candidate <= window) or (
        candidate > reference and candidate - reference > window
    )
