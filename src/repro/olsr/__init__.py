"""Pure-Python OLSR (RFC 3626) implementation.

This package is the routing substrate the paper's detector observes.  It
implements the core of the Optimized Link State Routing protocol: link
sensing and neighbour detection from HELLO messages, MPR selection and
signalling, TC flooding through MPRs, topology discovery and hop-count
routing-table calculation.  Every protocol event of interest is written to a
:class:`repro.logs.store.LogStore`, which is what the intrusion detector
consumes.
"""

from repro.olsr.constants import (
    HELLO_INTERVAL,
    LinkType,
    MessageType,
    NeighborType,
    TC_INTERVAL,
    Willingness,
    decode_link_code,
    encode_link_code,
)
from repro.olsr.association import (
    HnaAssociation,
    HnaAssociationSet,
    InterfaceAssociation,
    InterfaceAssociationSet,
)
from repro.olsr.duplicate import DuplicateSet, DuplicateTuple
from repro.olsr.link_state import (
    LinkSet,
    LinkTuple,
    MprSelectorSet,
    MprSelectorTuple,
    NeighborSet,
    NeighborTuple,
    TwoHopNeighborSet,
    TwoHopTuple,
)
from repro.olsr.messages import (
    HelloMessage,
    HnaMessage,
    LinkAdvertisement,
    MidMessage,
    OlsrMessage,
    TcMessage,
    make_hello,
)
from repro.olsr.mpr import MprComputationResult, mpr_coverage_complete, select_mprs
from repro.olsr.node import DataPacket, OlsrConfig, OlsrNode
from repro.olsr.packet import OlsrPacket
from repro.olsr.routing import RouteEntry, RoutingTable, compute_routing_table
from repro.olsr.topology import TopologySet, TopologyTuple

__all__ = [
    "DataPacket",
    "DuplicateSet",
    "DuplicateTuple",
    "HELLO_INTERVAL",
    "HelloMessage",
    "HnaAssociation",
    "HnaAssociationSet",
    "HnaMessage",
    "InterfaceAssociation",
    "InterfaceAssociationSet",
    "LinkAdvertisement",
    "LinkSet",
    "LinkTuple",
    "LinkType",
    "MessageType",
    "MidMessage",
    "MprComputationResult",
    "MprSelectorSet",
    "MprSelectorTuple",
    "NeighborSet",
    "NeighborTuple",
    "NeighborType",
    "OlsrConfig",
    "OlsrMessage",
    "OlsrNode",
    "OlsrPacket",
    "RouteEntry",
    "RoutingTable",
    "TC_INTERVAL",
    "TcMessage",
    "TopologySet",
    "TopologyTuple",
    "TwoHopNeighborSet",
    "TwoHopTuple",
    "Willingness",
    "compute_routing_table",
    "decode_link_code",
    "encode_link_code",
    "make_hello",
    "mpr_coverage_complete",
    "select_mprs",
]
