"""Duplicate set: suppression of already-processed / already-forwarded messages.

RFC 3626 §3.4 default forwarding algorithm relies on a duplicate set keyed by
(originator, message sequence number) to ensure each message is processed at
most once and retransmitted at most once per interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple


@dataclass
class DuplicateTuple:
    """Record of a message already seen (RFC §3.4.1)."""

    originator: str
    message_seq_number: int
    retransmitted: bool = False
    expiry_time: float = 0.0
    received_from: Set[str] = field(default_factory=set)

    def is_expired(self, now: float) -> bool:
        """Whether the tuple should be discarded."""
        return self.expiry_time < now


class DuplicateSet:
    """Collection of :class:`DuplicateTuple` keyed by (originator, sequence)."""

    def __init__(self, hold_time: float = 30.0) -> None:
        self.hold_time = hold_time
        self._tuples: Dict[Tuple[str, int], DuplicateTuple] = {}

    def _key(self, originator: str, seq: int) -> Tuple[str, int]:
        return (originator, seq)

    def seen(self, originator: str, seq: int) -> bool:
        """Whether the message has already been processed."""
        return self._key(originator, seq) in self._tuples

    def already_forwarded(self, originator: str, seq: int) -> bool:
        """Whether the message has already been retransmitted by this node."""
        record = self._tuples.get(self._key(originator, seq))
        return bool(record and record.retransmitted)

    def record(
        self,
        originator: str,
        seq: int,
        now: float,
        received_from: str,
        retransmitted: bool = False,
    ) -> DuplicateTuple:
        """Record (or refresh) a message occurrence."""
        key = self._key(originator, seq)
        record = self._tuples.get(key)
        if record is None:
            record = DuplicateTuple(
                originator=originator,
                message_seq_number=seq,
                retransmitted=retransmitted,
                expiry_time=now + self.hold_time,
                received_from={received_from},
            )
            self._tuples[key] = record
        else:
            record.expiry_time = now + self.hold_time
            record.received_from.add(received_from)
            record.retransmitted = record.retransmitted or retransmitted
        return record

    def mark_forwarded(self, originator: str, seq: int) -> None:
        """Mark a recorded message as retransmitted."""
        record = self._tuples.get(self._key(originator, seq))
        if record is not None:
            record.retransmitted = True

    def purge_expired(self, now: float) -> List[DuplicateTuple]:
        """Drop expired tuples; returns the removed ones."""
        expired = [t for t in self._tuples.values() if t.is_expired(now)]
        for record in expired:
            del self._tuples[(record.originator, record.message_seq_number)]
        return expired

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self):
        return iter(self._tuples.values())
