"""OLSR packet: the unit handed to the link layer.

A packet bundles one or more OLSR messages (RFC §3.3).  In this simulator a
packet usually carries a single message, but piggybacking is supported and
exercised by tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, List

from repro.olsr.messages import OlsrMessage

_packet_seq = itertools.count(1)


@dataclass(slots=True)
class OlsrPacket:
    """A packet containing OLSR messages."""

    source: str
    messages: List[OlsrMessage] = field(default_factory=list)
    packet_seq_number: int = field(default_factory=lambda: next(_packet_seq))

    def add(self, message: OlsrMessage) -> None:
        """Append a message to the packet."""
        self.messages.append(message)

    def size_bytes(self) -> int:
        """Nominal on-air size: 4-byte packet header plus the messages."""
        return 4 + sum(message.size_bytes() for message in self.messages)

    def __iter__(self):
        return iter(self.messages)

    def __len__(self) -> int:
        return len(self.messages)

    @classmethod
    def bundle(cls, source: str, messages: Iterable[OlsrMessage]) -> "OlsrPacket":
        """Build a packet containing ``messages`` in order."""
        packet = cls(source=source)
        for message in messages:
            packet.add(message)
        return packet
