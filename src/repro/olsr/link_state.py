"""OLSR information repositories: link set, neighbour sets, MPR-selector set.

These follow RFC 3626 sections 4.2–4.3 and 8.4.  Every repository exposes
``purge_expired(now)`` so the node can discard stale tuples when processing
its periodic timers, plus the queries the MPR-selection and routing
computations need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.olsr.constants import Willingness


# --------------------------------------------------------------------- links
@dataclass
class LinkTuple:
    """One local link (RFC §4.2.1).

    ``sym_time`` and ``asym_time`` are absolute expiry times; the link is
    symmetric while ``sym_time`` has not expired, asymmetric (heard-only)
    while only ``asym_time`` holds, and lost otherwise.
    """

    local_address: str
    neighbor_address: str
    sym_time: float = -1.0
    asym_time: float = -1.0
    expiry_time: float = 0.0

    def is_symmetric(self, now: float) -> bool:
        """Whether the link is currently symmetric."""
        return self.sym_time >= now

    def is_asymmetric(self, now: float) -> bool:
        """Whether the link is heard but not (yet) symmetric."""
        return self.asym_time >= now and not self.is_symmetric(now)

    def is_expired(self, now: float) -> bool:
        """Whether the whole tuple should be discarded."""
        return self.expiry_time < now

    def status(self, now: float) -> str:
        """Human-readable link status used in audit logs."""
        if self.is_symmetric(now):
            return "SYM"
        if self.is_asymmetric(now):
            return "ASYM"
        return "LOST"


class LinkSet:
    """Collection of :class:`LinkTuple`, keyed by neighbour address."""

    def __init__(self) -> None:
        self._links: Dict[str, LinkTuple] = {}

    def get(self, neighbor_address: str) -> Optional[LinkTuple]:
        """Link tuple towards ``neighbor_address`` (None when absent)."""
        return self._links.get(neighbor_address)

    def upsert(self, link: LinkTuple) -> LinkTuple:
        """Insert or replace the link towards ``link.neighbor_address``."""
        self._links[link.neighbor_address] = link
        return link

    def remove(self, neighbor_address: str) -> None:
        """Remove the link towards ``neighbor_address`` if present."""
        self._links.pop(neighbor_address, None)

    def purge_expired(self, now: float) -> List[LinkTuple]:
        """Drop expired tuples; returns the removed ones."""
        expired = [l for l in self._links.values() if l.is_expired(now)]
        for link in expired:
            del self._links[link.neighbor_address]
        return expired

    def symmetric_neighbors(self, now: float) -> Set[str]:
        """Addresses with a currently symmetric link."""
        return {a for a, l in self._links.items() if l.is_symmetric(now)}

    def is_symmetric_with(self, neighbor_address: str, now: float) -> bool:
        """O(1) membership test equivalent to ``address in symmetric_neighbors(now)``.

        Hot-path helper: received-message validation only needs the last
        hop's status, not the whole symmetric set.
        """
        link = self._links.get(neighbor_address)
        return link is not None and link.is_symmetric(now)

    def asymmetric_neighbors(self, now: float) -> Set[str]:
        """Addresses heard but not symmetric."""
        return {a for a, l in self._links.items() if l.is_asymmetric(now)}

    def all_neighbors(self) -> Set[str]:
        """Every address with a (non-purged) link tuple."""
        return set(self._links)

    def __iter__(self):
        return iter(self._links.values())

    def __len__(self) -> int:
        return len(self._links)


# ----------------------------------------------------------------- neighbours
@dataclass
class NeighborTuple:
    """One 1-hop neighbour (RFC §4.3.1)."""

    neighbor_address: str
    symmetric: bool = False
    willingness: Willingness = Willingness.WILL_DEFAULT


class NeighborSet:
    """Collection of :class:`NeighborTuple` keyed by address.

    ``version`` counts every mutation that can change what the MPR selector
    or the routing computation would see (membership, plus in-place
    symmetric/willingness edits signalled through :meth:`touch`); the node
    uses it to skip recomputations whose inputs did not change.
    """

    def __init__(self) -> None:
        self._neighbors: Dict[str, NeighborTuple] = {}
        self.version = 0

    def touch(self) -> None:
        """Signal an in-place edit of a stored tuple (symmetric/willingness)."""
        self.version += 1

    def get(self, address: str) -> Optional[NeighborTuple]:
        """Neighbour tuple for ``address`` (None when absent)."""
        return self._neighbors.get(address)

    def upsert(self, neighbor: NeighborTuple) -> NeighborTuple:
        """Insert or replace the tuple for ``neighbor.neighbor_address``."""
        self._neighbors[neighbor.neighbor_address] = neighbor
        self.version += 1
        return neighbor

    def remove(self, address: str) -> None:
        """Remove the tuple for ``address`` if present."""
        if self._neighbors.pop(address, None) is not None:
            self.version += 1

    def symmetric_neighbors(self) -> Set[str]:
        """Addresses of neighbours with symmetric status."""
        return {a for a, n in self._neighbors.items() if n.symmetric}

    def willingness_of(self, address: str) -> Willingness:
        """Willingness of ``address`` (default when unknown)."""
        neighbor = self._neighbors.get(address)
        return neighbor.willingness if neighbor else Willingness.WILL_DEFAULT

    def addresses(self) -> Set[str]:
        """Every known 1-hop neighbour address."""
        return set(self._neighbors)

    def __iter__(self):
        return iter(self._neighbors.values())

    def __len__(self) -> int:
        return len(self._neighbors)


# ------------------------------------------------------------ 2-hop neighbours
@dataclass(frozen=True)
class TwoHopKey:
    """Dictionary key for a 2-hop tuple."""

    neighbor_address: str
    two_hop_address: str


@dataclass
class TwoHopTuple:
    """One 2-hop neighbour reachable through ``neighbor_address`` (RFC §4.3.2)."""

    neighbor_address: str
    two_hop_address: str
    expiry_time: float = 0.0

    def is_expired(self, now: float) -> bool:
        """Whether the tuple should be discarded."""
        return self.expiry_time < now


class TwoHopNeighborSet:
    """Collection of :class:`TwoHopTuple`.

    ``version`` counts *structural* changes only — key insertions and
    removals.  Refreshing an existing tuple's expiry does not change
    :meth:`coverage_map` or any other key-derived query, so it leaves the
    version alone; that is what lets the node skip MPR/route recomputations
    on steady-state HELLO refreshes.
    """

    def __init__(self) -> None:
        self._tuples: Dict[TwoHopKey, TwoHopTuple] = {}
        self.version = 0
        self._sorted_pairs: Optional[Tuple[int, List[Tuple[str, str]]]] = None

    def sorted_pairs(self) -> List[Tuple[str, str]]:
        """``(two_hop_address, neighbor_address)`` pairs in sorted order.

        The traversal order of the routing calculation's 2-hop pass, cached
        on ``version``: expiry refreshes keep the key set — and therefore
        this list — unchanged.
        """
        cached = self._sorted_pairs
        if cached is not None and cached[0] == self.version:
            return cached[1]
        pairs = sorted(
            (t.two_hop_address, t.neighbor_address) for t in self._tuples.values()
        )
        self._sorted_pairs = (self.version, pairs)
        return pairs

    def upsert(self, record: TwoHopTuple) -> TwoHopTuple:
        """Insert or refresh a 2-hop tuple."""
        key = TwoHopKey(record.neighbor_address, record.two_hop_address)
        if key not in self._tuples:
            self.version += 1
        self._tuples[key] = record
        return record

    def remove_for_neighbor(self, neighbor_address: str) -> None:
        """Drop every tuple whose intermediate is ``neighbor_address``."""
        stale = [k for k in self._tuples if k.neighbor_address == neighbor_address]
        for key in stale:
            del self._tuples[key]
        if stale:
            self.version += 1

    def remove(self, neighbor_address: str, two_hop_address: str) -> None:
        """Drop one (neighbour, 2-hop) tuple if present."""
        if self._tuples.pop(TwoHopKey(neighbor_address, two_hop_address), None) is not None:
            self.version += 1

    def purge_expired(self, now: float) -> List[TwoHopTuple]:
        """Drop expired tuples; returns the removed ones."""
        expired = [t for t in self._tuples.values() if t.is_expired(now)]
        for record in expired:
            del self._tuples[TwoHopKey(record.neighbor_address, record.two_hop_address)]
        if expired:
            self.version += 1
        return expired

    def two_hop_addresses(self) -> Set[str]:
        """Every known 2-hop address."""
        return {t.two_hop_address for t in self._tuples.values()}

    def reachable_through(self, neighbor_address: str) -> Set[str]:
        """2-hop addresses reachable through the given 1-hop neighbour."""
        return {
            t.two_hop_address
            for t in self._tuples.values()
            if t.neighbor_address == neighbor_address
        }

    def providers_of(self, two_hop_address: str) -> Set[str]:
        """1-hop neighbours that provide connectivity to ``two_hop_address``."""
        return {
            t.neighbor_address
            for t in self._tuples.values()
            if t.two_hop_address == two_hop_address
        }

    def coverage_map(self) -> Dict[str, Set[str]]:
        """Mapping 1-hop neighbour -> set of 2-hop addresses it covers."""
        coverage: Dict[str, Set[str]] = {}
        for record in self._tuples.values():
            coverage.setdefault(record.neighbor_address, set()).add(record.two_hop_address)
        return coverage

    def __iter__(self):
        return iter(self._tuples.values())

    def __len__(self) -> int:
        return len(self._tuples)


# ------------------------------------------------------------- MPR selectors
@dataclass
class MprSelectorTuple:
    """A neighbour that selected the local node as MPR (RFC §4.3.4)."""

    selector_address: str
    expiry_time: float = 0.0

    def is_expired(self, now: float) -> bool:
        """Whether the tuple should be discarded."""
        return self.expiry_time < now


class MprSelectorSet:
    """Collection of :class:`MprSelectorTuple` keyed by selector address."""

    def __init__(self) -> None:
        self._selectors: Dict[str, MprSelectorTuple] = {}

    def upsert(self, record: MprSelectorTuple) -> MprSelectorTuple:
        """Insert or refresh a selector tuple."""
        self._selectors[record.selector_address] = record
        return record

    def remove(self, selector_address: str) -> None:
        """Remove a selector tuple if present."""
        self._selectors.pop(selector_address, None)

    def purge_expired(self, now: float) -> List[MprSelectorTuple]:
        """Drop expired tuples; returns the removed ones."""
        expired = [s for s in self._selectors.values() if s.is_expired(now)]
        for record in expired:
            del self._selectors[record.selector_address]
        return expired

    def addresses(self) -> Set[str]:
        """Every address that currently selects the local node as MPR."""
        return set(self._selectors)

    def contains(self, address: str) -> bool:
        """Whether ``address`` selects the local node as MPR."""
        return address in self._selectors

    def __iter__(self):
        return iter(self._selectors.values())

    def __len__(self) -> int:
        return len(self._selectors)
