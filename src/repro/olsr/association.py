"""Association sets for multiple interfaces (MID) and external routes (HNA).

RFC 3626 §5 lets a node with several network interfaces declare them in MID
messages so that any of its addresses maps back to one *main address*; §12
lets a gateway announce routes toward external (non-OLSR) networks in HNA
messages.  Both are association tables with expiry, maintained from the
respective flooded messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class InterfaceAssociation:
    """One interface address associated to a main address (RFC §5.1)."""

    interface_address: str
    main_address: str
    expiry_time: float = 0.0

    def is_expired(self, now: float) -> bool:
        """Whether the association should be discarded."""
        return self.expiry_time < now


class InterfaceAssociationSet:
    """Mapping of secondary interface addresses to main addresses."""

    def __init__(self) -> None:
        self._associations: Dict[str, InterfaceAssociation] = {}

    def process_mid(self, main_address: str, interface_addresses: List[str],
                    now: float, hold_time: float) -> bool:
        """Apply a MID message; returns True when something changed."""
        changed = False
        for address in interface_addresses:
            if address == main_address:
                continue
            existing = self._associations.get(address)
            if existing is None or existing.main_address != main_address:
                changed = True
            self._associations[address] = InterfaceAssociation(
                interface_address=address,
                main_address=main_address,
                expiry_time=now + hold_time,
            )
        return changed

    def main_address_of(self, address: str) -> str:
        """Main address of ``address`` (itself when no association is known)."""
        association = self._associations.get(address)
        return association.main_address if association else address

    def interfaces_of(self, main_address: str) -> Set[str]:
        """Secondary addresses associated to ``main_address``."""
        return {
            a.interface_address
            for a in self._associations.values()
            if a.main_address == main_address
        }

    def purge_expired(self, now: float) -> List[InterfaceAssociation]:
        """Drop expired associations; returns the removed ones."""
        expired = [a for a in self._associations.values() if a.is_expired(now)]
        for association in expired:
            del self._associations[association.interface_address]
        return expired

    def __len__(self) -> int:
        return len(self._associations)

    def __iter__(self):
        return iter(self._associations.values())


@dataclass
class HnaAssociation:
    """One announced external network (RFC §12.1)."""

    gateway_address: str
    network: str
    netmask: str
    expiry_time: float = 0.0

    def is_expired(self, now: float) -> bool:
        """Whether the association should be discarded."""
        return self.expiry_time < now


class HnaAssociationSet:
    """External networks announced by gateways."""

    def __init__(self) -> None:
        self._associations: Dict[Tuple[str, str, str], HnaAssociation] = {}

    def process_hna(self, gateway_address: str, networks: List[Tuple[str, str]],
                    now: float, hold_time: float) -> bool:
        """Apply an HNA message; returns True when something changed."""
        changed = False
        for network, netmask in networks:
            key = (gateway_address, network, netmask)
            if key not in self._associations:
                changed = True
            self._associations[key] = HnaAssociation(
                gateway_address=gateway_address,
                network=network,
                netmask=netmask,
                expiry_time=now + hold_time,
            )
        return changed

    def gateways_for(self, network: str) -> Set[str]:
        """Gateways announcing reachability to ``network``."""
        return {
            a.gateway_address
            for a in self._associations.values()
            if a.network == network
        }

    def networks(self) -> Set[Tuple[str, str]]:
        """Every announced (network, netmask) pair."""
        return {(a.network, a.netmask) for a in self._associations.values()}

    def announcements_of(self, gateway_address: str) -> Set[Tuple[str, str]]:
        """Networks announced by ``gateway_address``."""
        return {
            (a.network, a.netmask)
            for a in self._associations.values()
            if a.gateway_address == gateway_address
        }

    def purge_expired(self, now: float) -> List[HnaAssociation]:
        """Drop expired associations; returns the removed ones."""
        expired = [a for a in self._associations.values() if a.is_expired(now)]
        for association in expired:
            del self._associations[(association.gateway_address, association.network,
                                    association.netmask)]
        return expired

    def best_gateway(self, network: str, route_distance) -> Optional[str]:
        """Closest gateway for ``network`` according to ``route_distance``.

        ``route_distance`` is a callable mapping a gateway address to its hop
        count (or ``None`` when unreachable), typically
        ``routing_table.distance``.
        """
        candidates = []
        for gateway in self.gateways_for(network):
            distance = route_distance(gateway)
            if distance is not None:
                candidates.append((distance, gateway))
        if not candidates:
            return None
        candidates.sort()
        return candidates[0][1]

    def __len__(self) -> int:
        return len(self._associations)

    def __iter__(self):
        return iter(self._associations.values())
