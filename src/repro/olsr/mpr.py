"""MPR selection heuristic (RFC 3626 §8.3.1).

Given the 1-hop symmetric neighbours ``N`` (with willingness) and the strict
2-hop neighbourhood ``N2`` with its coverage map, compute a multipoint-relay
set that covers every node of ``N2``.

The heuristic is the one of the RFC:

1. Exclude neighbours with willingness ``WILL_NEVER``.
2. Always select neighbours with willingness ``WILL_ALWAYS``.
3. Select neighbours that are the *only* provider of some 2-hop node.
4. While uncovered 2-hop nodes remain, select the neighbour covering the most
   of them, breaking ties by higher willingness, then higher reachability,
   then higher degree, then lexicographic address (for determinism).
5. Optionally prune redundant MPRs (nodes whose removal keeps full coverage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Mapping, Optional, Set

from repro.numerics import numpy_or_none
from repro.olsr.constants import Willingness


@dataclass
class MprComputationResult:
    """Outcome of an MPR computation, with enough detail for audit logs."""

    mprs: Set[str] = field(default_factory=set)
    uncovered: Set[str] = field(default_factory=set)
    coverage: Dict[str, Set[str]] = field(default_factory=dict)
    isolated_two_hops: Dict[str, str] = field(default_factory=dict)
    """2-hop address -> the sole neighbour providing it (evidence E3 material)."""


def select_mprs(
    symmetric_neighbors: Set[str],
    coverage: Mapping[str, Set[str]],
    willingness: Optional[Mapping[str, Willingness]] = None,
    neighbor_degree: Optional[Mapping[str, int]] = None,
    local_address: Optional[str] = None,
    prune_redundant: bool = True,
    redundancy: int = 0,
    use_numpy: Optional[bool] = None,
) -> MprComputationResult:
    """Compute the MPR set.

    Parameters
    ----------
    symmetric_neighbors:
        The 1-hop symmetric neighbourhood ``N``.
    coverage:
        Mapping neighbour -> set of 2-hop addresses it claims to reach.
        Addresses equal to ``local_address`` or inside ``N`` are excluded from
        the 2-hop set per the RFC.
    willingness:
        Optional willingness per neighbour (default ``WILL_DEFAULT``).
    neighbor_degree:
        Optional degree D(y) per neighbour used for tie-breaking.
    local_address:
        The selecting node's own address (excluded from the 2-hop set).
    prune_redundant:
        Run the final redundancy-pruning pass of the RFC heuristic.
    redundancy:
        MPR_COVERAGE-like parameter: keep an MPR if it is needed for any 2-hop
        node covered by fewer than ``redundancy + 1`` selected MPRs.
    use_numpy:
        Force (``True``) or forbid (``False``) the vectorised selection of
        steps 1–4 over numpy coverage masks.  ``None`` (the default) engages
        it automatically on dense neighbourhoods when numpy is importable.
        Both paths produce identical results — including the *insertion
        order* into the MPR set, which the stable sort of the pruning step
        observes — so the choice is purely a performance knob.
    """
    willingness = willingness or {}
    neighbor_degree = neighbor_degree or {}

    def will(neighbor: str) -> Willingness:
        return willingness.get(neighbor, Willingness.WILL_DEFAULT)

    candidates = {
        n for n in symmetric_neighbors if will(n) != Willingness.WILL_NEVER
    }

    # Strict 2-hop set: exclude ourselves and the 1-hop neighbourhood.  It is
    # built from *every* symmetric neighbour's coverage so that 2-hop nodes
    # only reachable through WILL_NEVER neighbours show up as uncovered.
    two_hop_set: Set[str] = set()
    effective_coverage: Dict[str, Set[str]] = {}
    for neighbor in symmetric_neighbors:
        covered = {
            address
            for address in coverage.get(neighbor, set())
            if address not in symmetric_neighbors and address != local_address and address != neighbor
        }
        if neighbor in candidates:
            effective_coverage[neighbor] = covered
        two_hop_set |= covered

    result = MprComputationResult(coverage=effective_coverage)

    if not two_hop_set:
        # Still honour WILL_ALWAYS neighbours (RFC step 1).
        result.mprs = {n for n in candidates if will(n) == Willingness.WILL_ALWAYS}
        return result

    np = numpy_or_none() if use_numpy is not False else None
    if use_numpy is None:
        vectorise = (np is not None and len(candidates) >= 16
                     and len(two_hop_set) >= 16)
    else:
        vectorise = bool(use_numpy) and np is not None

    if vectorise:
        mprs = _select_greedy_numpy(np, candidates, effective_coverage,
                                    two_hop_set, will, neighbor_degree, result)
    else:
        mprs = _select_greedy_scalar(candidates, effective_coverage,
                                     two_hop_set, will, neighbor_degree, result)

    # Optional MPR_COVERAGE-style redundancy: ensure each 2-hop node is
    # covered by up to ``redundancy + 1`` MPRs when enough providers exist.
    if redundancy > 0:
        for address in sorted(two_hop_set):
            providers_of_address = sorted(
                n for n in candidates if address in effective_coverage.get(n, set())
            )
            needed = min(redundancy + 1, len(providers_of_address))
            covering = sum(
                1 for m in mprs if address in effective_coverage.get(m, set())
            )
            for provider in providers_of_address:
                if covering >= needed:
                    break
                if provider not in mprs:
                    mprs.add(provider)
                    covering += 1

    # Step 5: prune redundant MPRs (keep WILL_ALWAYS and sole providers).
    if prune_redundant and len(mprs) > 1:
        for neighbor in sorted(mprs, key=lambda n: (int(will(n)), len(effective_coverage[n]))):
            if will(neighbor) == Willingness.WILL_ALWAYS:
                continue
            others = mprs - {neighbor}
            covered_by_others: Dict[str, int] = {}
            for other in others:
                for address in effective_coverage[other]:
                    covered_by_others[address] = covered_by_others.get(address, 0) + 1
            still_needed = any(
                covered_by_others.get(address, 0) < redundancy + 1
                for address in effective_coverage[neighbor]
                if address in two_hop_set
            )
            if not still_needed:
                mprs.discard(neighbor)

    result.mprs = mprs
    return result


def _select_greedy_scalar(
    candidates: Set[str],
    effective_coverage: Dict[str, Set[str]],
    two_hop_set: Set[str],
    will: Callable[[str], Willingness],
    neighbor_degree: Mapping[str, int],
    result: MprComputationResult,
) -> Set[str]:
    """Steps 1, 3 and 4 of the RFC heuristic, one Python set op at a time."""
    uncovered = set(two_hop_set)
    mprs: Set[str] = set()

    # Step 1: WILL_ALWAYS neighbours are always selected.
    for neighbor in sorted(candidates):
        if will(neighbor) == Willingness.WILL_ALWAYS:
            mprs.add(neighbor)
            uncovered -= effective_coverage[neighbor]

    # Step 3 (RFC numbering): select neighbours that are the only provider of
    # some 2-hop node.
    providers: Dict[str, Set[str]] = {}
    for neighbor, covered in effective_coverage.items():
        for address in covered:
            providers.setdefault(address, set()).add(neighbor)
    for address, provider_set in sorted(providers.items()):
        if len(provider_set) == 1:
            sole = next(iter(provider_set))
            result.isolated_two_hops[address] = sole
            if address in uncovered:
                mprs.add(sole)
                uncovered -= effective_coverage[sole]

    # Step 4: greedy selection by reachability.
    while uncovered:
        best: Optional[str] = None
        best_key = None
        for neighbor in sorted(candidates - mprs):
            reach = len(effective_coverage[neighbor] & uncovered)
            if reach == 0:
                continue
            key = (
                int(will(neighbor)),
                reach,
                neighbor_degree.get(neighbor, len(effective_coverage[neighbor])),
                # lexicographically smaller address wins ties; negate by using
                # reversed comparison via tuple ordering below
            )
            if best is None or key > best_key or (key == best_key and neighbor < best):
                best, best_key = neighbor, key
        if best is None:
            # Remaining 2-hop nodes are unreachable through any candidate.
            result.uncovered = uncovered
            break
        mprs.add(best)
        uncovered -= effective_coverage[best]
    return mprs


def _select_greedy_numpy(
    np,
    candidates: Set[str],
    effective_coverage: Dict[str, Set[str]],
    two_hop_set: Set[str],
    will: Callable[[str], Willingness],
    neighbor_degree: Mapping[str, int],
    result: MprComputationResult,
) -> Set[str]:
    """Steps 1, 3 and 4 over a boolean coverage matrix.

    Mirrors :func:`_select_greedy_scalar` decision for decision — same
    selections *and the same insertion sequence into the returned set*
    (sorted-address order within each step), because the pruning step's
    stable sort iterates the set and must observe an identical layout.
    The greedy argmax uses ``lexsort`` with the ascending candidate index as
    the final key, which is exactly the scalar loop's smallest-address tie
    break.
    """
    neighbors = sorted(candidates)
    addresses = sorted(two_hop_set)
    address_index = {address: j for j, address in enumerate(addresses)}
    cover = np.zeros((len(neighbors), len(addresses)), dtype=bool)
    for i, neighbor in enumerate(neighbors):
        row = cover[i]
        for address in effective_coverage[neighbor]:
            row[address_index[address]] = True
    will_array = np.array([int(will(n)) for n in neighbors], dtype=np.int64)
    degree_array = np.array(
        [neighbor_degree.get(n, len(effective_coverage[n])) for n in neighbors],
        dtype=np.int64)
    uncovered = np.ones(len(addresses), dtype=bool)
    selected = np.zeros(len(neighbors), dtype=bool)
    mprs: Set[str] = set()

    # Step 1: WILL_ALWAYS neighbours, in sorted-address order.
    always = int(Willingness.WILL_ALWAYS)
    for i, neighbor in enumerate(neighbors):
        if will_array[i] == always:
            mprs.add(neighbor)
            selected[i] = True
            uncovered &= ~cover[i]

    # Step 3: sole providers, in sorted 2-hop address order.
    provider_counts = cover.sum(axis=0)
    first_provider = cover.argmax(axis=0)
    for j, address in enumerate(addresses):
        if provider_counts[j] != 1:
            continue
        i = int(first_provider[j])
        result.isolated_two_hops[address] = neighbors[i]
        if uncovered[j]:
            mprs.add(neighbors[i])
            selected[i] = True
            uncovered &= ~cover[i]

    # Step 4: greedy argmax of (willingness, reach, degree, -address).
    while uncovered.any():
        reach = (cover & uncovered).sum(axis=1)
        reach[selected] = 0
        eligible = np.flatnonzero(reach > 0)
        if eligible.size == 0:
            result.uncovered = {addresses[j] for j in np.flatnonzero(uncovered)}
            break
        order = np.lexsort((eligible, -degree_array[eligible],
                            -reach[eligible], -will_array[eligible]))
        i = int(eligible[order[0]])
        mprs.add(neighbors[i])
        selected[i] = True
        uncovered &= ~cover[i]
    return mprs


def mpr_coverage_complete(
    mprs: Set[str],
    coverage: Mapping[str, Set[str]],
    two_hop_set: Iterable[str],
) -> bool:
    """Check the MPR invariant: every 2-hop node is covered by at least one MPR."""
    covered: Set[str] = set()
    for mpr in mprs:
        covered |= set(coverage.get(mpr, set()))
    return set(two_hop_set) <= covered
