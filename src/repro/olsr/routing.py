"""Routing-table calculation (RFC 3626 §10).

Routes are recomputed from scratch whenever the neighbourhood or the topology
set changes: first the symmetric 1-hop neighbours, then the 2-hop neighbours,
then increasingly distant destinations learned through TC edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.olsr.link_state import NeighborSet, TwoHopNeighborSet
from repro.olsr.topology import TopologySet


@dataclass(frozen=True)
class RouteEntry:
    """One routing-table entry."""

    destination: str
    next_hop: str
    distance: int


class RoutingTable:
    """Mapping destination -> :class:`RouteEntry`."""

    def __init__(self) -> None:
        self._routes: Dict[str, RouteEntry] = {}

    def get(self, destination: str) -> Optional[RouteEntry]:
        """Route towards ``destination`` (None when unreachable)."""
        return self._routes.get(destination)

    def next_hop(self, destination: str) -> Optional[str]:
        """Next hop towards ``destination`` (None when unreachable)."""
        entry = self._routes.get(destination)
        return entry.next_hop if entry else None

    def distance(self, destination: str) -> Optional[int]:
        """Hop count towards ``destination`` (None when unreachable)."""
        entry = self._routes.get(destination)
        return entry.distance if entry else None

    def destinations(self) -> Set[str]:
        """Every reachable destination."""
        return set(self._routes)

    def entries(self) -> List[RouteEntry]:
        """All entries sorted by (distance, destination) for stable output."""
        return sorted(self._routes.values(), key=lambda e: (e.distance, e.destination))

    def replace_all(self, entries: Dict[str, RouteEntry]) -> "RoutingTableDiff":
        """Swap in a freshly computed table; returns the differences."""
        old = self._routes
        added = {d for d in entries if d not in old}
        removed = {d for d in old if d not in entries}
        changed = {
            d
            for d in entries
            if d in old and (entries[d].next_hop != old[d].next_hop or entries[d].distance != old[d].distance)
        }
        self._routes = dict(entries)
        return RoutingTableDiff(added=added, removed=removed, changed=changed)

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self):
        return iter(self._routes.values())


@dataclass
class RoutingTableDiff:
    """Differences produced by a routing-table recomputation."""

    added: Set[str]
    removed: Set[str]
    changed: Set[str]

    @property
    def is_empty(self) -> bool:
        """Whether the recomputation changed nothing."""
        return not (self.added or self.removed or self.changed)


def compute_routing_table(
    local_address: str,
    neighbor_set: NeighborSet,
    two_hop_set: TwoHopNeighborSet,
    topology_set: TopologySet,
) -> Dict[str, RouteEntry]:
    """Compute the shortest-path routing table (hop-count metric).

    The procedure mirrors RFC 3626 §10: symmetric 1-hop neighbours get direct
    routes, 2-hop neighbours are routed through the advertising 1-hop
    neighbour, and farther destinations are added iteratively using the
    topology set (edges ``last_address -> destination``), always extending the
    shortest known route.
    """
    routes: Dict[str, RouteEntry] = {}

    # Step 1: symmetric 1-hop neighbours.
    for address in sorted(neighbor_set.symmetric_neighbors()):
        if address == local_address:
            continue
        routes[address] = RouteEntry(destination=address, next_hop=address, distance=1)

    # Step 2: 2-hop neighbours (through a symmetric neighbour).  The cached
    # sorted view walks the exact order of the former per-call
    # ``sorted(two_hop_set, key=(two_hop, neighbor))`` scan.
    if hasattr(two_hop_set, "sorted_pairs"):
        two_hop_pairs = two_hop_set.sorted_pairs()
    else:  # pragma: no cover - duck-typed stand-ins in tests
        two_hop_pairs = sorted(
            (t.two_hop_address, t.neighbor_address) for t in two_hop_set
        )
    for dest, via in two_hop_pairs:
        if dest == local_address or dest in routes:
            continue
        if via not in routes:
            continue
        routes[dest] = RouteEntry(destination=dest, next_hop=via, distance=2)

    # Step 3: iterative extension through TC edges.  ``routing_view`` groups
    # the (destination, last) scan order by destination, so each ring visits
    # a destination once and stops at its first advertiser in the frontier —
    # the same edge the former flat scan would have selected.
    if hasattr(topology_set, "routing_view"):
        topology_view = topology_set.routing_view()
    else:  # pragma: no cover - duck-typed stand-ins in tests
        topology_view = []
        for dest, last in sorted(
            (t.destination_address, t.last_address) for t in topology_set
        ):
            if topology_view and topology_view[-1][0] == dest:
                topology_view[-1][1].append(last)
            else:
                topology_view.append((dest, [last]))
    distance = 2
    while True:
        added_any = False
        frontier = {d for d, entry in routes.items() if entry.distance == distance}
        if not frontier:
            break
        for dest, lasts in topology_view:
            if dest == local_address or dest in routes:
                continue
            for last in lasts:
                if last in frontier:
                    via_entry = routes[last]
                    routes[dest] = RouteEntry(
                        destination=dest,
                        next_hop=via_entry.next_hop,
                        distance=distance + 1,
                    )
                    added_any = True
                    break
        if not added_any:
            break
        distance += 1

    return routes
