"""The OLSR node state machine.

:class:`OlsrNode` implements the RFC 3626 core: link sensing, neighbour
detection, MPR selection and signalling, TC flooding through MPRs, topology
discovery and routing-table calculation.  Every state transition of interest
is written to the node's :class:`repro.logs.store.LogStore`, because the
paper's detector works from those audit logs rather than from packets.

:class:`OlsrNode` is the OLSR backend of the protocol-agnostic routing
layer: the network attachment, audit log, data plane and the generic attack
hooks (``forward_filters``, ``message_taps``, ``data_handlers``) live on
:class:`repro.routing.base.RoutingProtocol`; this module adds the
OLSR-specific hooks:

* ``hello_mutators`` / ``tc_mutators`` — transform control messages right
  before emission (link spoofing, willingness manipulation…).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.logs.records import LogCategory
from repro.logs.store import LogStore
from repro.olsr.constants import (
    DUP_HOLD_TIME,
    HELLO_INTERVAL,
    MAXJITTER,
    NEIGHB_HOLD_TIME,
    TC_INTERVAL,
    TOP_HOLD_TIME,
    LinkType,
    MessageType,
    NeighborType,
    Willingness,
)
from repro.olsr.association import HnaAssociationSet, InterfaceAssociationSet
from repro.olsr.duplicate import DuplicateSet
from repro.olsr.link_state import (
    LinkSet,
    LinkTuple,
    MprSelectorSet,
    MprSelectorTuple,
    NeighborSet,
    NeighborTuple,
    TwoHopNeighborSet,
    TwoHopTuple,
)
from repro.olsr.messages import (
    HelloMessage,
    HnaMessage,
    MidMessage,
    OlsrMessage,
    TcMessage,
)
from repro.olsr.mpr import select_mprs
from repro.olsr.packet import OlsrPacket
from repro.olsr.routing import RoutingTable, compute_routing_table
from repro.olsr.topology import TopologySet
from repro.routing.base import DataPacket, RoutingProtocol
from repro.routing.registry import register_protocol

HelloMutator = Callable[[HelloMessage, "OlsrNode"], HelloMessage]
TcMutator = Callable[[TcMessage, "OlsrNode"], TcMessage]
ForwardFilter = Callable[[OlsrMessage, str, "OlsrNode"], bool]
MessageTap = Callable[[OlsrMessage, str, "OlsrNode"], None]


@dataclass
class OlsrConfig:
    """Per-node protocol configuration (RFC defaults, all overridable)."""

    hello_interval: float = HELLO_INTERVAL
    tc_interval: float = TC_INTERVAL
    neighbor_hold_time: float = NEIGHB_HOLD_TIME
    topology_hold_time: float = TOP_HOLD_TIME
    duplicate_hold_time: float = DUP_HOLD_TIME
    willingness: Willingness = Willingness.WILL_DEFAULT
    emission_jitter: float = MAXJITTER
    start_delay_max: float = 1.0
    #: Emit TC messages even with an empty MPR-selector set (useful in tests).
    tc_when_no_selectors: bool = False
    #: Forwarding jitter applied before relaying flooded messages.
    forward_jitter: float = 0.1
    #: Additional interface addresses announced in MID messages (RFC §5).
    extra_interface_addresses: tuple = ()
    #: External networks announced in HNA messages, as (network, netmask)
    #: pairs (RFC §12); non-empty makes the node a gateway.
    hna_networks: tuple = ()


class OlsrNode(RoutingProtocol):
    """One OLSR router attached to a simulated network."""

    protocol_name = "olsr"

    def __init__(
        self,
        node_id: str,
        network,
        config: Optional[OlsrConfig] = None,
        log_store: Optional[LogStore] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(node_id, network, log_store=log_store, seed=seed)
        self.config = config if isinstance(config, OlsrConfig) else OlsrConfig()

        # Information repositories (RFC §4).
        self.link_set = LinkSet()
        self.neighbor_set = NeighborSet()
        self.two_hop_set = TwoHopNeighborSet()
        self.mpr_selector_set = MprSelectorSet()
        self.topology_set = TopologySet()
        self.duplicate_set = DuplicateSet(hold_time=self.config.duplicate_hold_time)
        self.interface_associations = InterfaceAssociationSet()
        self.hna_associations = HnaAssociationSet()
        self._routing_table = RoutingTable()
        self.mpr_set: Set[str] = set()
        self.ansn = 0

        # Recompute gates: fingerprints of the repository state the last
        # MPR/route computation ran against.  Steady-state HELLO refreshes
        # leave the structural versions (and the live symmetric set) alone,
        # so the per-message recompute collapses to a cheap key comparison
        # and the full RFC computations run once per actual topology change
        # instead of once per message.  Skipping is byte-identical: unchanged
        # inputs would reproduce the current result, which logs nothing.
        self._mpr_inputs_key: Optional[tuple] = None
        self._route_inputs_key: Optional[tuple] = None

        # OLSR-specific attack hooks (generic ones live on the base class).
        self.hello_mutators: List[HelloMutator] = []
        self.tc_mutators: List[TcMutator] = []

    # ------------------------------------------------------------------ life
    def start(self) -> None:
        """Begin periodic HELLO/TC emission and housekeeping."""
        if self._started:
            return
        self._started = True
        self.log.log(self.now, LogCategory.SYSTEM, "NODE_STARTED",
                     willingness=int(self.config.willingness))
        start_delay = self.rng.uniform(0.0, self.config.start_delay_max)
        self._schedule_periodic(
            self.config.hello_interval,
            self._emit_hello,
            start_delay=start_delay,
            jitter=self.config.emission_jitter,
            rng=self.rng,
        )
        self._schedule_periodic(
            self.config.tc_interval,
            self._emit_tc,
            start_delay=start_delay + self.config.hello_interval,
            jitter=self.config.emission_jitter,
            rng=self.rng,
        )
        if self.config.extra_interface_addresses:
            self._schedule_periodic(
                self.config.tc_interval,
                self._emit_mid,
                start_delay=start_delay + 0.5,
                jitter=self.config.emission_jitter,
                rng=self.rng,
            )
        if self.config.hna_networks:
            self._schedule_periodic(
                self.config.tc_interval,
                self._emit_hna,
                start_delay=start_delay + 1.0,
                jitter=self.config.emission_jitter,
                rng=self.rng,
            )
        self._schedule_periodic(
            self.config.hello_interval,
            self._housekeeping,
            start_delay=self.config.hello_interval,
        )

    # ----------------------------------------------------------- state views
    def symmetric_neighbors(self) -> Set[str]:
        """Current 1-hop symmetric neighbours (the paper's ``NS``)."""
        return self.link_set.symmetric_neighbors(self.now)

    def two_hop_neighbors(self) -> Set[str]:
        """Current strict 2-hop neighbourhood."""
        own = self.symmetric_neighbors()
        return {
            a for a in self.two_hop_set.two_hop_addresses()
            if a != self.node_id and a not in own
        }

    def coverage_of(self, neighbor: str) -> Set[str]:
        """2-hop addresses reachable through ``neighbor`` according to its HELLOs."""
        return self.two_hop_set.reachable_through(neighbor)

    def providers_of(self, two_hop_address: str) -> Set[str]:
        """1-hop neighbours claiming to reach ``two_hop_address``."""
        return self.two_hop_set.providers_of(two_hop_address)

    def is_mpr_selector(self, address: str) -> bool:
        """Whether ``address`` has selected this node as MPR."""
        return self.mpr_selector_set.contains(address)

    def peer_advertises(self, peer: str, address: str) -> bool:
        """Whether ``peer``'s HELLOs advertise ``address`` as its neighbour."""
        return address in self.two_hop_set.reachable_through(peer)

    @property
    def routing_table(self) -> RoutingTable:
        """Proactive routing table, refreshed lazily on read.

        The table is a pure function of the neighbour/2-hop/topology
        repositories, so recomputing at read time yields exactly the table an
        eager per-message recomputation would have produced at the same
        instant.  Reads between structural changes cost one version-key
        comparison; the expensive calculation runs once per batch of
        topology changes instead of once per received message — the
        difference between quadratic and cubic total routing work during
        convergence of a 1,024-node flood.
        """
        self._recompute_routes()
        return self._routing_table

    def next_hop(self, destination: str) -> Optional[str]:
        """Next hop toward ``destination`` from the proactive routing table."""
        return self.routing_table.next_hop(destination)

    def route_distance(self, destination: str) -> Optional[int]:
        """Hop count toward ``destination``, if routed."""
        return self.routing_table.distance(destination)

    def known_destinations(self) -> Set[str]:
        """Destinations present in the routing table."""
        return set(self.routing_table.destinations())

    # ------------------------------------------------------------- emission
    def _emit_hello(self) -> None:
        if not self._started:
            return
        hello = self.build_hello()
        for mutator in self.hello_mutators:
            hello = mutator(hello, self)
        message = OlsrMessage(
            originator=self.node_id,
            body=hello,
            vtime=self.config.neighbor_hold_time,
            ttl=1,
        )
        packet = OlsrPacket.bundle(self.node_id, [message])
        self.interface.broadcast(packet, size_bytes=packet.size_bytes())
        self.stats.record_sent("HELLO")
        self.log.log(
            self.now,
            LogCategory.MESSAGE_TX,
            "HELLO",
            seq=message.message_seq_number,
            sym_neighbors=sorted(hello.symmetric_neighbors()),
            asym_neighbors=sorted(hello.asymmetric_neighbors()),
            mprs=sorted(hello.mpr_neighbors()),
            willingness=int(hello.willingness),
        )

    def build_hello(self) -> HelloMessage:
        """Build the HELLO describing the current local link state."""
        now = self.now
        hello = HelloMessage(willingness=self.config.willingness,
                             htime=self.config.hello_interval)
        for link in self.link_set:
            if link.is_expired(now):
                continue
            address = link.neighbor_address
            if link.is_symmetric(now):
                neighbor_type = (
                    NeighborType.MPR_NEIGH if address in self.mpr_set else NeighborType.SYM_NEIGH
                )
                hello.add_link(address, LinkType.SYM_LINK, neighbor_type)
            elif link.is_asymmetric(now):
                hello.add_link(address, LinkType.ASYM_LINK, NeighborType.NOT_NEIGH)
            else:
                hello.add_link(address, LinkType.LOST_LINK, NeighborType.NOT_NEIGH)
        return hello

    def _emit_tc(self) -> None:
        if not self._started:
            return
        selectors = self.mpr_selector_set.addresses()
        if not selectors and not self.config.tc_when_no_selectors:
            return
        tc = TcMessage(ansn=self.ansn, advertised_neighbors=set(selectors))
        for mutator in self.tc_mutators:
            tc = mutator(tc, self)
        message = OlsrMessage(
            originator=self.node_id,
            body=tc,
            vtime=self.config.topology_hold_time,
        )
        packet = OlsrPacket.bundle(self.node_id, [message])
        self.interface.broadcast(packet, size_bytes=packet.size_bytes())
        self.stats.record_sent("TC")
        self.log.log(
            self.now,
            LogCategory.MESSAGE_TX,
            "TC",
            seq=message.message_seq_number,
            ansn=tc.ansn,
            advertised=sorted(tc.advertised_neighbors),
        )

    def _emit_mid(self) -> None:
        if not self._started:
            return
        mid = MidMessage(interface_addresses=list(self.config.extra_interface_addresses))
        message = OlsrMessage(originator=self.node_id, body=mid,
                              vtime=3 * self.config.tc_interval)
        packet = OlsrPacket.bundle(self.node_id, [message])
        self.interface.broadcast(packet, size_bytes=packet.size_bytes())
        self.stats.record_sent("MID")
        self.log.log(self.now, LogCategory.MESSAGE_TX, "MID",
                     seq=message.message_seq_number,
                     interfaces=sorted(mid.interface_addresses))

    def _emit_hna(self) -> None:
        if not self._started:
            return
        hna = HnaMessage(networks=list(self.config.hna_networks))
        message = OlsrMessage(originator=self.node_id, body=hna,
                              vtime=3 * self.config.tc_interval)
        packet = OlsrPacket.bundle(self.node_id, [message])
        self.interface.broadcast(packet, size_bytes=packet.size_bytes())
        self.stats.record_sent("HNA")
        self.log.log(self.now, LogCategory.MESSAGE_TX, "HNA",
                     seq=message.message_seq_number,
                     networks=[f"{net}/{mask}" for net, mask in hna.networks])

    # -------------------------------------------------------------- reception
    def handle_control(self, payload: object, last_hop: str) -> None:
        """Unpack an OLSR packet and process the bundled messages."""
        if isinstance(payload, OlsrPacket):
            for message in payload:
                self._on_message(message, last_hop)

    def _on_message(self, message: OlsrMessage, last_hop: str) -> None:
        if message.originator == self.node_id:
            return  # our own flooded message came back
        for tap in self.message_taps:
            tap(message, last_hop, self)
        message_type = str(message.message_type)
        self.stats.record_received(message_type)

        duplicate = self.duplicate_set.seen(message.originator, message.message_seq_number)
        if message.message_type == MessageType.HELLO:
            self._log_hello_rx(message, last_hop)
            self.process_hello(message, last_hop)
            return

        # Flooded message types (TC / MID / HNA).
        self._log_flooded_rx(message, last_hop)
        if not duplicate:
            if message.message_type == MessageType.TC:
                self.process_tc(message, last_hop)
            elif message.message_type == MessageType.MID:
                self.process_mid(message, last_hop)
            elif message.message_type == MessageType.HNA:
                self.process_hna(message, last_hop)
        else:
            self.stats.duplicates_suppressed += 1
            self.log.log(self.now, LogCategory.DUPLICATE, "DUPLICATE_DETECTED",
                         origin=message.originator, seq=message.message_seq_number)
        self.duplicate_set.record(
            message.originator, message.message_seq_number, self.now, last_hop
        )
        self._consider_forwarding(message, last_hop)

    def _log_hello_rx(self, message: OlsrMessage, last_hop: str) -> None:
        hello: HelloMessage = message.body
        self.log.log(
            self.now,
            LogCategory.MESSAGE_RX,
            "HELLO",
            origin=message.originator,
            last_hop=last_hop,
            seq=message.message_seq_number,
            sym_neighbors=sorted(hello.symmetric_neighbors()),
            asym_neighbors=sorted(hello.asymmetric_neighbors()),
            mprs=sorted(hello.mpr_neighbors()),
            willingness=int(hello.willingness),
        )

    def _log_flooded_rx(self, message: OlsrMessage, last_hop: str) -> None:
        fields = {
            "origin": message.originator,
            "last_hop": last_hop,
            "seq": message.message_seq_number,
            "ttl": message.ttl,
            "hops": message.hop_count,
        }
        if message.message_type == MessageType.TC:
            tc: TcMessage = message.body
            fields["ansn"] = tc.ansn
            fields["advertised"] = sorted(tc.advertised_neighbors)
        self.log.log(self.now, LogCategory.MESSAGE_RX, str(message.message_type), **fields)

    # ------------------------------------------------------ HELLO processing
    def process_hello(self, message: OlsrMessage, last_hop: str) -> None:
        """Link sensing, neighbour detection, 2-hop population, MPR signalling."""
        hello: HelloMessage = message.body
        origin = message.originator
        now = self.now
        hold = message.vtime if message.vtime > 0 else self.config.neighbor_hold_time

        link = self.link_set.get(origin)
        created = link is None
        if link is None:
            link = LinkTuple(local_address=self.node_id, neighbor_address=origin)
        was_symmetric = link.is_symmetric(now)

        link.asym_time = now + hold
        heard_us = self.node_id in hello.all_addresses()
        declared_lost = self.node_id in hello.lost_neighbors()
        if heard_us and not declared_lost:
            link.sym_time = now + hold
        elif declared_lost:
            link.sym_time = -1.0
        link.expiry_time = max(link.asym_time, link.sym_time) + hold
        self.link_set.upsert(link)

        if created:
            self.log.log(now, LogCategory.LINK, "LINK_ADDED", neighbor=origin)
        now_symmetric = link.is_symmetric(now)
        if now_symmetric and not was_symmetric:
            self.log.log(now, LogCategory.LINK, "LINK_SYM", neighbor=origin)
        elif not now_symmetric and was_symmetric:
            self.log.log(now, LogCategory.LINK, "LINK_ASYM", neighbor=origin)

        # Neighbour set.
        neighbor = self.neighbor_set.get(origin)
        if neighbor is None:
            neighbor = NeighborTuple(neighbor_address=origin)
            self.neighbor_set.upsert(neighbor)
            self.log.log(now, LogCategory.NEIGHBOR, "NEIGHBOR_ADDED", neighbor=origin)
        previous_symmetric = neighbor.symmetric
        if neighbor.symmetric != now_symmetric:
            neighbor.symmetric = now_symmetric
            self.neighbor_set.touch()
        if neighbor.willingness != hello.willingness:
            neighbor.willingness = hello.willingness
            self.neighbor_set.touch()
        if neighbor.symmetric and not previous_symmetric:
            self.log.log(now, LogCategory.NEIGHBOR, "NEIGHBOR_SYM", neighbor=origin)
        elif not neighbor.symmetric and previous_symmetric:
            self.log.log(now, LogCategory.NEIGHBOR, "NEIGHBOR_NOT_SYM", neighbor=origin)

        # 2-hop neighbour set: only populated through symmetric neighbours.
        if now_symmetric:
            advertised = hello.symmetric_neighbors()
            previous_coverage = self.two_hop_set.reachable_through(origin)
            for address in advertised:
                if address == self.node_id:
                    continue
                self.two_hop_set.upsert(
                    TwoHopTuple(neighbor_address=origin, two_hop_address=address,
                                expiry_time=now + hold)
                )
                if address not in previous_coverage:
                    self.log.log(now, LogCategory.TWO_HOP, "TWO_HOP_ADDED",
                                 neighbor=origin, two_hop=address)
            for address in previous_coverage - advertised:
                self.two_hop_set.remove(origin, address)
                self.log.log(now, LogCategory.TWO_HOP, "TWO_HOP_REMOVED",
                             neighbor=origin, two_hop=address)

        # MPR selector set: the neighbour declares us with MPR neighbour type.
        if self.node_id in hello.mpr_neighbors():
            if not self.mpr_selector_set.contains(origin):
                self.log.log(now, LogCategory.MPR_SELECTOR, "SELECTOR_ADDED", selector=origin)
                self.ansn += 1
            self.mpr_selector_set.upsert(
                MprSelectorTuple(selector_address=origin, expiry_time=now + hold)
            )
        elif self.mpr_selector_set.contains(origin):
            self.mpr_selector_set.remove(origin)
            self.ansn += 1
            self.log.log(now, LogCategory.MPR_SELECTOR, "SELECTOR_REMOVED", selector=origin)

        self._recompute_mprs()

    # --------------------------------------------------------- TC processing
    def process_tc(self, message: OlsrMessage, last_hop: str) -> None:
        """Topology-set maintenance from a TC message."""
        if not self.link_set.is_symmetric_with(last_hop, self.now):
            # RFC §9.5: discard TC messages not received from a symmetric neighbour.
            self.log.log(self.now, LogCategory.DROP, "FILTERED",
                         origin=message.originator, reason="tc_from_non_sym", last_hop=last_hop)
            return
        tc: TcMessage = message.body
        hold = message.vtime if message.vtime > 0 else self.config.topology_hold_time
        changed = self.topology_set.process_tc(
            originator=message.originator,
            ansn=tc.ansn,
            advertised=set(tc.advertised_neighbors),
            now=self.now,
            hold_time=hold,
        )
        if changed:
            self.log.log(self.now, LogCategory.TOPOLOGY, "TOPOLOGY_UPDATED",
                         origin=message.originator, ansn=tc.ansn,
                         advertised=sorted(tc.advertised_neighbors))

    def process_mid(self, message: OlsrMessage, last_hop: str) -> None:
        """Interface-association maintenance from a MID message (RFC §5.4)."""
        if not self.link_set.is_symmetric_with(last_hop, self.now):
            self.log.log(self.now, LogCategory.DROP, "FILTERED",
                         origin=message.originator, reason="mid_from_non_sym",
                         last_hop=last_hop)
            return
        mid: MidMessage = message.body
        hold = message.vtime if message.vtime > 0 else self.config.topology_hold_time
        changed = self.interface_associations.process_mid(
            main_address=message.originator,
            interface_addresses=list(mid.interface_addresses),
            now=self.now,
            hold_time=hold,
        )
        if changed:
            self.log.log(self.now, LogCategory.TOPOLOGY, "TOPOLOGY_UPDATED",
                         origin=message.originator, kind="mid",
                         interfaces=sorted(mid.interface_addresses))

    def process_hna(self, message: OlsrMessage, last_hop: str) -> None:
        """External-route maintenance from an HNA message (RFC §12.5)."""
        if not self.link_set.is_symmetric_with(last_hop, self.now):
            self.log.log(self.now, LogCategory.DROP, "FILTERED",
                         origin=message.originator, reason="hna_from_non_sym",
                         last_hop=last_hop)
            return
        hna: HnaMessage = message.body
        hold = message.vtime if message.vtime > 0 else self.config.topology_hold_time
        changed = self.hna_associations.process_hna(
            gateway_address=message.originator,
            networks=list(hna.networks),
            now=self.now,
            hold_time=hold,
        )
        if changed:
            self.log.log(self.now, LogCategory.TOPOLOGY, "TOPOLOGY_UPDATED",
                         origin=message.originator, kind="hna",
                         networks=[f"{net}/{mask}" for net, mask in hna.networks])

    def external_route_for(self, network: str) -> Optional[str]:
        """Next hop toward an external ``network`` announced via HNA.

        The closest announcing gateway (by hop count) is chosen and the packet
        is routed toward it; returns ``None`` when no reachable gateway
        announces the network.
        """
        gateway = self.hna_associations.best_gateway(network, self.routing_table.distance)
        if gateway is None:
            return None
        return self.routing_table.next_hop(gateway)

    # -------------------------------------------------------------- forwarding
    def _consider_forwarding(self, message: OlsrMessage, last_hop: str) -> None:
        """RFC §3.4 default forwarding algorithm (MPR flooding)."""
        if message.ttl <= 1:
            self.log.log(self.now, LogCategory.DROP, "TTL_EXPIRED",
                         origin=message.originator, seq=message.message_seq_number)
            return
        if not self.link_set.is_symmetric_with(last_hop, self.now):
            return
        if self.duplicate_set.already_forwarded(message.originator, message.message_seq_number):
            return
        if not self.mpr_selector_set.contains(last_hop):
            # We are not an MPR of the last hop: do not retransmit.
            self.log.log(self.now, LogCategory.FORWARD, "NOT_RELAYED",
                         origin=message.originator, seq=message.message_seq_number,
                         reason="not_mpr_of_last_hop", last_hop=last_hop)
            return
        for forward_filter in self.forward_filters:
            if not forward_filter(message, last_hop, self):
                self.stats.messages_dropped += 1
                self.log.log(self.now, LogCategory.DROP, "FILTERED",
                             origin=message.originator, seq=message.message_seq_number,
                             reason="forward_filter", last_hop=last_hop)
                return
        self.duplicate_set.mark_forwarded(message.originator, message.message_seq_number)
        forwarded = message.forwarded_copy()
        delay = self.rng.uniform(0.0, self.config.forward_jitter)
        self.simulator.post(delay, self._transmit_forward, forwarded)
        self.stats.messages_forwarded += 1
        self.log.log(self.now, LogCategory.FORWARD, "RELAYED",
                     origin=message.originator, seq=message.message_seq_number,
                     ttl=forwarded.ttl, last_hop=last_hop)

    def _transmit_forward(self, message: OlsrMessage) -> None:
        packet = OlsrPacket.bundle(self.node_id, [message])
        self.interface.broadcast(packet, size_bytes=packet.size_bytes())

    # -------------------------------------------------------------- data plane
    def _data_filter_probe(self, packet: DataPacket) -> OlsrMessage:
        """Drop attacks inspect data relays through a TC-shaped pseudo-message."""
        return OlsrMessage(originator=packet.source, body=TcMessage(ansn=0))

    # ------------------------------------------------------------ maintenance
    def _housekeeping(self) -> None:
        now = self.now
        expired_links = self.link_set.purge_expired(now)
        for link in expired_links:
            self.log.log(now, LogCategory.LINK, "LINK_EXPIRED", neighbor=link.neighbor_address)
            self.neighbor_set.remove(link.neighbor_address)
            self.two_hop_set.remove_for_neighbor(link.neighbor_address)
            self.log.log(now, LogCategory.NEIGHBOR, "NEIGHBOR_REMOVED",
                         neighbor=link.neighbor_address)
        for record in self.two_hop_set.purge_expired(now):
            self.log.log(now, LogCategory.TWO_HOP, "TWO_HOP_REMOVED",
                         neighbor=record.neighbor_address, two_hop=record.two_hop_address)
        for record in self.mpr_selector_set.purge_expired(now):
            self.ansn += 1
            self.log.log(now, LogCategory.MPR_SELECTOR, "SELECTOR_REMOVED",
                         selector=record.selector_address)
        self.topology_set.purge_expired(now)
        self.duplicate_set.purge_expired(now)
        self.interface_associations.purge_expired(now)
        self.hna_associations.purge_expired(now)
        # Symmetric status can silently expire; refresh neighbour tuples.
        symmetric = self.link_set.symmetric_neighbors(now)
        for neighbor in self.neighbor_set:
            was = neighbor.symmetric
            still = neighbor.neighbor_address in symmetric
            if was != still:
                neighbor.symmetric = still
                self.neighbor_set.touch()
            if was and not still:
                self.log.log(now, LogCategory.NEIGHBOR, "NEIGHBOR_NOT_SYM",
                             neighbor=neighbor.neighbor_address)
        if expired_links:
            self._recompute_mprs()
        # Routes refresh lazily on read (see ``routing_table``); this periodic
        # call coalesces the topology churn of a whole HELLO interval into at
        # most one recomputation, keeping the audit log's ROUTE trail alive
        # even in runs that never consult the table.
        self._recompute_routes()

    def _recompute_mprs(self) -> None:
        now = self.now
        # The live symmetric set is time-dependent (links expire silently),
        # so it is part of the gate key alongside the structural versions.
        symmetric = self.link_set.symmetric_neighbors(now)
        inputs_key = (self.neighbor_set.version, self.two_hop_set.version,
                      frozenset(symmetric))
        if inputs_key == self._mpr_inputs_key:
            return
        willingness = {n.neighbor_address: n.willingness for n in self.neighbor_set}
        coverage = self.two_hop_set.coverage_map()
        result = select_mprs(
            symmetric_neighbors=symmetric,
            coverage=coverage,
            willingness=willingness,
            local_address=self.node_id,
        )
        new_set = result.mprs
        if new_set != self.mpr_set:
            added = new_set - self.mpr_set
            removed = self.mpr_set - new_set
            for address in sorted(added):
                self.log.log(now, LogCategory.MPR, "MPR_SELECTED", mpr=address,
                             covered=sorted(result.coverage.get(address, set())))
            for address in sorted(removed):
                self.log.log(now, LogCategory.MPR, "MPR_REMOVED", mpr=address)
            self.log.log(now, LogCategory.MPR, "MPR_SET_CHANGED",
                         mprs=sorted(new_set), previous=sorted(self.mpr_set))
            self.mpr_set = new_set
        self._mpr_inputs_key = inputs_key

    def _recompute_routes(self) -> None:
        # The routing computation reads only stored symmetric flags and the
        # 2-hop/topology key sets — all covered by the structural versions.
        inputs_key = (self.neighbor_set.version, self.two_hop_set.version,
                      self.topology_set.version)
        if inputs_key == self._route_inputs_key:
            return
        entries = compute_routing_table(
            local_address=self.node_id,
            neighbor_set=self.neighbor_set,
            two_hop_set=self.two_hop_set,
            topology_set=self.topology_set,
        )
        diff = self._routing_table.replace_all(entries)
        if not diff.is_empty:
            self.log.log(self.now, LogCategory.ROUTE, "TABLE_RECOMPUTED",
                         added=sorted(diff.added), removed=sorted(diff.removed),
                         changed=sorted(diff.changed), size=len(entries))
        self._route_inputs_key = inputs_key

    # ---------------------------------------------------------------- helpers
    def describe(self) -> Dict[str, object]:
        """Summary of the node's protocol state (used by examples/reports)."""
        return {
            "node": self.node_id,
            "protocol": self.protocol_name,
            "symmetric_neighbors": sorted(self.symmetric_neighbors()),
            "two_hop_neighbors": sorted(self.two_hop_neighbors()),
            "mprs": sorted(self.mpr_set),
            "mpr_selectors": sorted(self.mpr_selector_set.addresses()),
            "routes": len(self.routing_table),
        }


def _build_olsr(node_id, network, config=None, log_store=None, seed=None):
    return OlsrNode(node_id, network, config=config,
                    log_store=log_store, seed=seed)


register_protocol(
    "olsr",
    _build_olsr,
    "OLSR (RFC 3626): proactive link-state routing with MPR flooding "
    "(the paper's protocol)",
)
