"""Protocol constants from RFC 3626 (Optimized Link State Routing).

Timing values are in seconds of simulated time.  They follow the RFC defaults
but every :class:`repro.olsr.node.OlsrConfig` field can override them, which
the experiments use to shorten runs.
"""

from __future__ import annotations

import enum

# --------------------------------------------------------------------- timing
HELLO_INTERVAL = 2.0
REFRESH_INTERVAL = 2.0
TC_INTERVAL = 5.0
MID_INTERVAL = TC_INTERVAL
HNA_INTERVAL = TC_INTERVAL

NEIGHB_HOLD_TIME = 3 * REFRESH_INTERVAL
TOP_HOLD_TIME = 3 * TC_INTERVAL
DUP_HOLD_TIME = 30.0
MID_HOLD_TIME = 3 * MID_INTERVAL
HNA_HOLD_TIME = 3 * HNA_INTERVAL

#: Maximum jitter subtracted from periodic emission intervals (RFC §18.3).
MAXJITTER = HELLO_INTERVAL / 4.0


# ---------------------------------------------------------------- message ids
class MessageType(str, enum.Enum):
    """OLSR control-message types."""

    HELLO = "HELLO"
    TC = "TC"
    MID = "MID"
    HNA = "HNA"

    def __str__(self) -> str:
        return self.value


# --------------------------------------------------------------- willingness
class Willingness(int, enum.Enum):
    """Willingness of a node to carry traffic on behalf of others (RFC §18.8)."""

    WILL_NEVER = 0
    WILL_LOW = 1
    WILL_DEFAULT = 3
    WILL_HIGH = 6
    WILL_ALWAYS = 7


# ----------------------------------------------------------------- link codes
class LinkType(int, enum.Enum):
    """Link type advertised in HELLO messages (RFC §6.1.1)."""

    UNSPEC_LINK = 0
    ASYM_LINK = 1
    SYM_LINK = 2
    LOST_LINK = 3


class NeighborType(int, enum.Enum):
    """Neighbour type advertised in HELLO messages (RFC §6.1.1)."""

    NOT_NEIGH = 0
    SYM_NEIGH = 1
    MPR_NEIGH = 2


def encode_link_code(link_type: LinkType, neighbor_type: NeighborType) -> int:
    """Pack a (link type, neighbour type) pair into the 8-bit link code."""
    return (int(neighbor_type) << 2) | int(link_type)


def decode_link_code(code: int) -> tuple[LinkType, NeighborType]:
    """Unpack an 8-bit link code into its (link type, neighbour type) pair."""
    link_type = LinkType(code & 0x03)
    neighbor_type = NeighborType((code >> 2) & 0x03)
    return link_type, neighbor_type


# --------------------------------------------------------------------- limits
DEFAULT_TTL = 255
MAX_TTL = 255

#: Default emission sizes used for statistics (bytes); HELLO stays local so
#: its size only matters for collision modelling.
HELLO_BASE_SIZE = 20
TC_BASE_SIZE = 16
PER_ADDRESS_SIZE = 4
