"""Distributed campaign fabric: dispatch, work-steal, merge, serve.

Architecture
------------
The experiment engine (:mod:`repro.experiments.engine`) executes a campaign
as one process pool writing one SQLite file — a ceiling once grids reach
thousands of cells or must span machines.  This package splits the
engine's *queue* from its *workers* without changing what a cell is: the
:class:`~repro.experiments.engine.ExperimentSpec` content hash remains the
single identity a result is keyed by, which is what makes every stage of
the fabric idempotent and crash-tolerant.

* **Dispatch** (:mod:`repro.fabric.dispatcher`) — expands a registered
  experiment through the exact same
  :func:`~repro.experiments.engine.expand_experiment` path as a local run
  and enqueues the missing cells into a :class:`FabricQueue` (one WAL-mode
  SQLite file on a shared filesystem).  The run context (backend, seed,
  axis overrides) is recorded alongside, so downstream stages can
  reconstruct the exact report.

* **Work** (:mod:`repro.fabric.worker`) — each worker group claims batches
  under a **TTL lease**, heartbeats while executing, writes completed rows
  to its **own shard store** (``shard-<group>.sqlite``; no cross-process
  SQLite contention) and marks cells done.  A killed worker simply stops
  heartbeating: its leases lapse and the next ``claim`` by any live worker
  *steals* the batch — the campaign loses only in-flight work, never
  progress, and never stalls.

* **Merge** (:mod:`repro.fabric.merge`) — streams shard records into the
  canonical store, deduplicating by content hash (a stolen-then-reexecuted
  cell merges to one row), refusing schema-version mismatches, and copying
  raw stored text so NaN/±inf rows — and therefore reports — stay
  byte-identical to a single-process run.

* **Serve** (:mod:`repro.fabric.service`) — a read-only stdlib HTTP API
  (``/experiments``, ``/experiments/<name>/rows``,
  ``/experiments/<name>/report``) over the canonical store, fronted by an
  in-process LRU keyed on the store generation and content-hash ETags for
  client revalidation; :mod:`repro.fabric.client` is the thin consumer the
  ``report --url`` CLI path uses.

Because every stage communicates only through content-hash-keyed SQLite
files, the fabric needs no daemon, broker or third-party dependency, and
any stage can be re-run at any time: re-dispatching adds nothing, workers
re-executing a cell produce identical rows, and re-merging is a no-op.

CLI: ``python -m repro.experiments fabric dispatch|work|merge|serve|status``
(see :mod:`repro.fabric.cli`).
"""

from repro.fabric.dispatcher import (
    FABRIC_SCHEMA_VERSION,
    ClaimedCell,
    DispatchReport,
    FabricQueue,
    dispatch_experiment,
)
from repro.fabric.merge import MergeConflictError, MergeReport, merge_shards
from repro.fabric.worker import WorkerReport, run_worker, shard_store_path

__all__ = [
    "FABRIC_SCHEMA_VERSION",
    "ClaimedCell",
    "DispatchReport",
    "FabricQueue",
    "dispatch_experiment",
    "MergeConflictError",
    "MergeReport",
    "merge_shards",
    "WorkerReport",
    "run_worker",
    "shard_store_path",
]
