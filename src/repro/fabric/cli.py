"""CLI of the distributed campaign fabric.

Reached as ``python -m repro.experiments fabric <command>``; the four
commands mirror the lifecycle of a distributed campaign::

    fabric dispatch EXPERIMENT --queue Q [--axis ... --param ... --resume-from DB]
    fabric work     --queue Q --group NAME --shard-dir DIR [--lease-ttl S]
    fabric merge    --into DB [--queue Q] SHARD [SHARD ...]
    fabric serve    --db DB [--host H --port P]
    fabric status   --queue Q

``dispatch`` runs once, anywhere; ``work`` runs on every machine (or in
every process group) sharing the queue's filesystem; ``merge`` and
``serve`` run wherever the canonical store should live.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments._cli import open_store, parse_axis, parse_param, require_store_file
from repro.experiments.engine import get_experiment

_PROG = "python -m repro.experiments fabric"


def build_dispatch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"{_PROG} dispatch",
        description="Expand an experiment grid and enqueue its cells for "
                    "fabric workers (idempotent; re-dispatching adds only "
                    "missing cells).",
    )
    parser.add_argument("experiment", help="registered experiment name")
    parser.add_argument("--queue", required=True, metavar="FILE",
                        help="fabric queue database (created if missing)")
    parser.add_argument("--backend", default=None,
                        help="execution backend (default: the experiment's own)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the experiment's base seed")
    parser.add_argument("--axis", type=parse_axis, action="append", default=[],
                        metavar="NAME=V1,V2",
                        help="override (or add) a swept axis; repeatable")
    parser.add_argument("--param", type=parse_param, action="append", default=[],
                        metavar="NAME=VALUE",
                        help="override a fixed parameter; repeatable")
    parser.add_argument("--resume-from", default=None, metavar="FILE",
                        help="canonical store whose completed cells are "
                             "skipped (resume a previous distributed run)")
    return parser


def dispatch_main(argv: Sequence[str]) -> int:
    from repro.fabric.dispatcher import dispatch_experiment

    parser = build_dispatch_parser()
    args = parser.parse_args(argv)
    try:
        get_experiment(args.experiment)
    except KeyError as error:
        parser.error(str(error.args[0]))
    resume_store = None
    if args.resume_from:
        if not require_store_file(args.resume_from):
            return 1
        resume_store = open_store(args.resume_from)
        if resume_store is None:
            return 1
    try:
        report = dispatch_experiment(
            args.queue,
            args.experiment,
            backend=args.backend,
            base_seed=args.seed,
            axes=dict(args.axis) or None,
            params=dict(args.param) or None,
            resume_store=resume_store,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if resume_store is not None:
            resume_store.close()
    print(report.format_line())
    return 0


def build_work_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"{_PROG} work",
        description="Run one worker group against a fabric queue: claim "
                    "lease-held batches (stealing expired leases of dead "
                    "workers), execute them, and commit rows to this "
                    "group's own shard store.",
    )
    parser.add_argument("--queue", required=True, metavar="FILE",
                        help="fabric queue database written by 'dispatch'")
    parser.add_argument("--group", required=True,
                        help="worker-group name (also names the shard store)")
    parser.add_argument("--shard-dir", required=True, metavar="DIR",
                        help="directory the shard store is written into")
    parser.add_argument("--batch", type=int, default=4, metavar="N",
                        help="cells claimed per lease (default: 4)")
    parser.add_argument("--lease-ttl", type=float, default=30.0, metavar="SEC",
                        help="lease duration; must exceed the slowest cell's "
                             "runtime (default: 30)")
    parser.add_argument("--poll", type=float, default=0.2, metavar="SEC",
                        help="idle poll interval while other workers hold "
                             "live leases (default: 0.2)")
    parser.add_argument("--max-cells", type=int, default=None, metavar="N",
                        help="execute at most N cells, then release and exit")
    parser.add_argument("--no-wait", action="store_true",
                        help="exit when nothing is claimable instead of "
                             "waiting for other workers' leases")
    return parser


def work_main(argv: Sequence[str]) -> int:
    from repro.fabric.worker import run_worker

    parser = build_work_parser()
    args = parser.parse_args(argv)
    if args.batch <= 0:
        parser.error("--batch must be positive")
    if args.lease_ttl <= 0:
        parser.error("--lease-ttl must be positive")
    report = run_worker(
        args.queue,
        args.group,
        args.shard_dir,
        batch_size=args.batch,
        lease_ttl=args.lease_ttl,
        poll=args.poll,
        max_cells=args.max_cells,
        wait_for_work=not args.no_wait,
    )
    print(report.format_line())
    return 130 if report.interrupted else 0


def build_merge_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"{_PROG} merge",
        description="Stream-merge per-group shard stores into the canonical "
                    "results store, deduplicating by content hash and "
                    "refusing mismatched schema versions.",
    )
    parser.add_argument("shards", nargs="+", metavar="SHARD",
                        help="shard store files written by 'work'")
    parser.add_argument("--into", required=True, metavar="FILE",
                        help="canonical results store (created if missing)")
    parser.add_argument("--queue", default=None, metavar="FILE",
                        help="fabric queue whose run contexts are stamped "
                             "into the canonical store (lets 'serve' render "
                             "exact experiment reports)")
    return parser


def merge_main(argv: Sequence[str]) -> int:
    from repro.fabric.merge import merge_shards

    parser = build_merge_parser()
    args = parser.parse_args(argv)
    for shard in args.shards:
        if not require_store_file(shard):
            return 1
    try:
        report = merge_shards(args.shards, args.into, queue_path=args.queue)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(report.format_line())
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"{_PROG} serve",
        description="Serve a read-only results API over a canonical store: "
                    "GET /experiments, /experiments/<name>/rows, "
                    "/experiments/<name>/report — with ETag revalidation "
                    "and an in-process LRU over rendered responses.",
    )
    parser.add_argument("--db", required=True, metavar="FILE",
                        help="canonical results store written by 'merge'")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="bind port; 0 picks a free one (default: 0)")
    parser.add_argument("--cache-size", type=int, default=64, metavar="N",
                        help="LRU entries over rendered responses (default: 64)")
    return parser


def serve_main(argv: Sequence[str]) -> int:
    from repro.fabric.service import serve_forever

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if not require_store_file(args.db):
        return 1
    return serve_forever(args.db, host=args.host, port=args.port,
                         cache_size=args.cache_size)


def status_main(argv: Sequence[str]) -> int:
    from repro.fabric.dispatcher import FabricQueue

    parser = argparse.ArgumentParser(
        prog=f"{_PROG} status",
        description="Per-state cell counts of a fabric queue.",
    )
    parser.add_argument("--queue", required=True, metavar="FILE",
                        help="fabric queue database")
    args = parser.parse_args(argv)
    if not require_store_file(args.queue):
        return 1
    with FabricQueue(args.queue) as queue:
        counts = queue.counts()
        contexts = [name for name, _ in queue.iter_contexts()]
    total = sum(counts.values())
    print(f"fabric: {args.queue}: {total} cells — "
          + ", ".join(f"{state}={counts[state]}" for state in sorted(counts))
          + (f"; experiments: {', '.join(contexts)}" if contexts else ""))
    return 0


_USAGE = f"""usage: {_PROG} <command> ...

commands:
  dispatch  expand an experiment grid into a work-stealing fabric queue
  work      run one worker group (lease, execute, shard-store, heartbeat)
  merge     fold shard stores into the canonical store (hash-deduplicated)
  serve     read-only results API over a canonical store (ETag + LRU cache)
  status    per-state cell counts of a queue

run '{_PROG} <command> --help' for the command's options."""


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Fabric CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE)
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    handlers = {
        "dispatch": dispatch_main,
        "work": work_main,
        "merge": merge_main,
        "serve": serve_main,
        "status": status_main,
    }
    handler = handlers.get(command)
    if handler is None:
        print(f"error: unknown fabric command {command!r}\n\n{_USAGE}",
              file=sys.stderr)
        return 2
    return handler(rest)


if __name__ == "__main__":
    sys.exit(main())
