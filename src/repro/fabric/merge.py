"""Streaming merge of per-shard results stores into one canonical store.

Each worker group writes its own shard (no cross-process SQLite
contention); this module folds any number of shards into the canonical
store the ``report`` CLI and the results service read.  Three guarantees:

* **Schema agreement** — every shard (and the destination) must carry the
  current :data:`~repro.experiments.results.SCHEMA_VERSION`; opening a
  shard written by a different encoding raises instead of mixing
  incompatible rows (:class:`~repro.experiments.results.ResultsStore`
  enforces this on open).
* **Hash-keyed dedup** — a cell executed by two workers (a stolen lease
  whose original owner had already written its shard) merges into exactly
  one canonical record.  If two shards ever disagree on the *content* of
  the same hash, the merge refuses loudly: identical specs must produce
  identical rows, so a conflict means corruption, not a race.
* **Byte identity** — records are copied as raw stored text
  (:meth:`~repro.experiments.results.ResultsStore.record_raw`), never
  decoded and re-encoded, so NaN/±inf rows and repr-exact floats survive
  the merge byte for byte and the merged report is identical to the
  single-process one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments.results import ResultsStore

from repro.fabric.dispatcher import FabricQueue


class MergeConflictError(ValueError):
    """Two shards store different rows under the same content hash."""


@dataclass
class MergeReport:
    """What one merge folded together."""

    destination: str
    shards: List[str] = field(default_factory=list)
    merged: int = 0
    duplicates: int = 0
    contexts: int = 0

    def format_line(self) -> str:
        return (f"fabric: merged {self.merged} cells from {len(self.shards)} "
                f"shards into {self.destination} "
                f"({self.duplicates} duplicates skipped, "
                f"{self.contexts} run contexts carried)")


def merge_shards(
    shard_paths: List[str],
    dest_path: str,
    queue_path: Optional[str] = None,
) -> MergeReport:
    """Fold shard stores into ``dest_path`` (streaming, hash-deduplicated).

    ``queue_path`` optionally names the fabric queue the campaign was
    dispatched through; its per-experiment run contexts are stamped into
    the canonical store's metadata so the results service can render each
    experiment's exact report without being told the axes on its command
    line.  Raises :class:`ValueError` on a shard with a mismatched schema
    version and :class:`MergeConflictError` on row disagreement.
    """
    report = MergeReport(destination=dest_path)
    with ResultsStore(dest_path) as dest:
        for shard_path in shard_paths:
            # ResultsStore.__init__ refuses mismatched schema versions, so a
            # shard written by older code never contaminates the merge.
            with ResultsStore(shard_path) as shard:
                report.shards.append(shard_path)
                for record in shard.iter_records():
                    if dest.record_raw(record):
                        report.merged += 1
                        continue
                    existing = dest.raw_row_json(record.spec_hash)
                    if existing != record.row_json:
                        raise MergeConflictError(
                            f"shard {shard_path!r} stores different rows for "
                            f"cell {record.spec_hash[:12]}… ({record.run_id}) "
                            f"than already merged — identical specs must "
                            f"produce identical rows; refusing to merge")
                    report.duplicates += 1
        if queue_path is not None:
            with FabricQueue(queue_path) as queue:
                for experiment, context_json in queue.iter_contexts():
                    dest.set_meta(f"context:{experiment}", context_json)
                    report.contexts += 1
    return report
