"""Fabric worker: claim → execute → commit-to-shard → mark done, repeat.

One worker process owns one *worker group*: it writes every completed cell
to its own shard store (``shard-<group>.sqlite``), so N groups write N
SQLite files with zero cross-process contention — the canonical store only
comes into existence at merge time (:mod:`repro.fabric.merge`).

Liveness: while a batch executes, a daemon heartbeat thread extends the
batch's lease every ``lease_ttl / 3`` seconds, so a healthy worker never
loses cells no matter how slow they run; a killed worker stops heartbeating
and its lease lapses, at which point any other worker's ``claim`` steals
the batch.  ``Ctrl-C`` releases the unfinished leases immediately instead
of waiting for the TTL.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.experiments.engine import execute_cell
from repro.experiments.results import ResultsStore
from repro.fabric.dispatcher import FabricQueue


def shard_store_path(shard_dir: str, group: str) -> str:
    """Canonical shard-store filename of one worker group."""
    return os.path.join(shard_dir, f"shard-{group}.sqlite")


@dataclass
class WorkerReport:
    """What one worker invocation did."""

    group: str
    shard_path: str
    executed: int = 0
    stolen: int = 0
    lost_leases: int = 0
    interrupted: bool = False
    batches: int = 0
    executed_run_ids: List[str] = field(default_factory=list)

    def format_line(self) -> str:
        note = " (interrupted)" if self.interrupted else ""
        return (f"fabric: worker {self.group}: executed {self.executed} cells "
                f"in {self.batches} batches ({self.stolen} stolen, "
                f"{self.lost_leases} leases lost) -> {self.shard_path}{note}")


class _Heartbeat:
    """Daemon thread extending the lease of the in-flight batch."""

    def __init__(self, queue: FabricQueue, group: str, lease_ttl: float) -> None:
        self._queue = queue
        self._group = group
        self._ttl = lease_ttl
        self._lock = threading.Lock()
        self._hashes: List[str] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def watch(self, hashes: List[str]) -> None:
        with self._lock:
            self._hashes = list(hashes)

    def done(self, spec_hash: str) -> None:
        with self._lock:
            if spec_hash in self._hashes:
                self._hashes.remove(spec_hash)

    def _run(self) -> None:
        interval = max(self._ttl / 3.0, 0.01)
        while not self._stop.wait(interval):
            with self._lock:
                hashes = list(self._hashes)
            if hashes:
                self._queue.heartbeat(self._group, hashes, self._ttl)

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def run_worker(
    queue_path: str,
    group: str,
    shard_dir: str,
    batch_size: int = 4,
    lease_ttl: float = 30.0,
    poll: float = 0.2,
    max_cells: Optional[int] = None,
    wait_for_work: bool = True,
    execute: Callable = execute_cell,
) -> WorkerReport:
    """Run one worker group until the queue is drained (or ``max_cells``).

    The loop claims a batch, executes each cell, commits its rows to the
    group's shard store (durable before the queue sees ``done``) and marks
    it complete.  When nothing is claimable but unfinished cells remain —
    they are leased to live workers — the worker polls until they either
    complete or their leases lapse and become stealable; with
    ``wait_for_work=False`` it returns instead (useful for tests and
    budgeted runs).  ``max_cells`` bounds this invocation; leftover leases
    are released so other workers pick them up immediately.
    """
    os.makedirs(shard_dir, exist_ok=True)
    shard_path = shard_store_path(shard_dir, group)
    report = WorkerReport(group=group, shard_path=shard_path)
    queue = FabricQueue(queue_path)
    shard = ResultsStore(shard_path)
    heartbeat = _Heartbeat(queue, group, lease_ttl)
    try:
        while True:
            budget = batch_size
            if max_cells is not None:
                budget = min(budget, max_cells - report.executed)
                if budget <= 0:
                    break
            batch = queue.claim(group, budget, lease_ttl)
            if not batch:
                if queue.unfinished() == 0 or not wait_for_work:
                    break
                time.sleep(poll)
                continue
            report.batches += 1
            heartbeat.watch([cell.spec_hash for cell in batch])
            for cell in batch:
                if cell.stolen:
                    report.stolen += 1
                rows = execute(cell.spec)
                shard.record(cell.spec, rows, spec_hash=cell.spec_hash)
                heartbeat.done(cell.spec_hash)
                if queue.complete(group, cell.spec_hash):
                    report.executed += 1
                    report.executed_run_ids.append(cell.spec.run_id)
                else:
                    # Someone stole the lease mid-execution; the shard row is
                    # redundant but harmless (the merge dedupes by hash).
                    report.lost_leases += 1
    except KeyboardInterrupt:
        # Completed cells are already durable in the shard; hand the rest
        # back to the queue so other workers need not wait out the TTL.
        report.interrupted = True
        queue.release(group)
    finally:
        heartbeat.stop()
        shard.close()
        queue.close()
    return report
