"""Read-only results service over a canonical (merged) results store.

The "millions of users" story of the platform is many *readers* hitting
precomputed sweep aggregates, not many simulators — so this service is
deliberately boring: stdlib :mod:`http.server`, three GET endpoints, and
two layers of caching in front of the SQLite store:

* an **in-process LRU** over fully-rendered responses, invalidated by the
  store file's ``(mtime, size)`` generation — a repeated request never
  reopens the database, it is served from memory (``X-Cache: HIT``);
* **ETag revalidation** — every response carries a content-hash ETag; a
  client replaying it via ``If-None-Match`` gets ``304 Not Modified`` with
  an empty body, so polling dashboards cost bytes only when results change.

Endpoints::

    GET /experiments                      JSON index of stored experiments
    GET /experiments/<name>/rows          JSON array of the flat result rows
    GET /experiments/<name>/report        the plain-text report

``/report`` renders the experiment's *exact* engine report when the store
carries the run context the fabric dispatcher recorded (``merge --queue``
stamps it in), making the served bytes identical to
``python -m repro.experiments report --db <store> --experiment <name>``
with the dispatch-time flags; without a context it falls back to a generic
table of the experiment's rows.

The HTTP layer is a thin shell over :meth:`ResultsService.handle`, which is
a pure ``(path, if_none_match) -> (status, headers, body)`` function — unit
tests exercise it without sockets.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import unquote

from repro.experiments.results import ResultsStore

Response = Tuple[int, Dict[str, str], bytes]


class ResultsService:
    """Request handling + caching, independent of any socket (see module doc)."""

    def __init__(self, store_path: str, cache_size: int = 64) -> None:
        self.store_path = store_path
        self.cache_size = cache_size
        self._lock = threading.Lock()
        #: path -> (store generation, etag, content type, body)
        self._cache: "OrderedDict[str, Tuple[Tuple[int, int], str, str, bytes]]"
        self._cache = OrderedDict()

    # -------------------------------------------------------------- caching
    def _generation(self) -> Optional[Tuple[int, int]]:
        try:
            stat = os.stat(self.store_path)
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def handle(self, path: str, if_none_match: Optional[str] = None) -> Response:
        """Serve one GET request; returns ``(status, headers, body)``."""
        path = path.split("?", 1)[0].rstrip("/") or "/"
        generation = self._generation()
        if generation is None:
            return _error(503, f"results store {self.store_path} is not readable")
        with self._lock:
            cached = self._cache.get(path)
            if cached is not None and cached[0] == generation:
                self._cache.move_to_end(path)
                _, etag, content_type, body = cached
                return _respond(etag, content_type, body, if_none_match,
                                cache="HIT")
            try:
                built = self._build(path)
            except KeyError as error:
                return _error(404, str(error.args[0]))
            if built is None:
                return _error(404, f"unknown path {path!r} (try /experiments)")
            content_type, body = built
            etag = f'"{hashlib.sha256(body).hexdigest()}"'
            self._cache[path] = (generation, etag, content_type, body)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return _respond(etag, content_type, body, if_none_match, cache="MISS")

    # ------------------------------------------------------------- building
    def _build(self, path: str) -> Optional[Tuple[str, bytes]]:
        if path == "/experiments":
            return self._build_index()
        parts = path.strip("/").split("/")
        if len(parts) == 3 and parts[0] == "experiments":
            name = unquote(parts[1])
            if parts[2] == "rows":
                return self._build_rows(name)
            if parts[2] == "report":
                return self._build_report(name)
        return None

    def _open(self) -> ResultsStore:
        # A fresh connection per (uncached) build keeps the service
        # thread-safe without sharing one SQLite handle across threads.
        return ResultsStore(self.store_path)

    def _build_index(self) -> Tuple[str, bytes]:
        experiments: Dict[str, Dict[str, int]] = {}
        with self._open() as store:
            for record in store.iter_records():
                name = _experiment_of(record)
                entry = experiments.setdefault(name, {"cells": 0, "rows": 0})
                entry["cells"] += 1
                decoded = json.loads(record.row_json)
                entry["rows"] += len(decoded) if isinstance(decoded, list) else 1
            contexts = dict(store.iter_meta("context:"))
        payload = {
            "store": os.path.basename(self.store_path),
            "experiments": [
                {"name": name,
                 "cells": entry["cells"],
                 "rows": entry["rows"],
                 "report": f"/experiments/{name}/report",
                 "has_context": f"context:{name}" in contexts}
                for name, entry in sorted(experiments.items())
            ],
        }
        return _json_body(payload)

    def _iter_experiment_rows(self, store: ResultsStore, name: str):
        found = False
        for record in store.iter_records():
            if _experiment_of(record) != name:
                continue
            found = True
            decoded = json.loads(record.row_json)
            if isinstance(decoded, list):
                yield from decoded
            else:
                yield decoded
        if not found:
            raise KeyError(f"no stored cells for experiment {name!r}")

    def _build_rows(self, name: str) -> Tuple[str, bytes]:
        with self._open() as store:
            rows = list(self._iter_experiment_rows(store, name))
        return _json_body(rows)

    def _build_report(self, name: str) -> Tuple[str, bytes]:
        from repro.experiments.engine import run_experiment
        from repro.experiments.report import format_table

        with self._open() as store:
            context_json = store.get_meta(f"context:{name}")
            if context_json is not None:
                context = json.loads(context_json)
                result = run_experiment(
                    name,
                    backend=context.get("backend"),
                    base_seed=context.get("base_seed"),
                    axes=context.get("axes") or None,
                    params=context.get("params") or None,
                    store=store,
                    resume=True,
                    max_new_runs=0,  # render-only: never execute in the service
                )
                report = result.format_report()
            else:
                rows = list(self._iter_experiment_rows(store, name))
                report = format_table(rows, title=f"Stored rows — {name}")
        return "text/plain; charset=utf-8", report.encode("utf-8")


def _experiment_of(record) -> str:
    spec = json.loads(record.spec_json)
    name = spec.get("experiment")
    if isinstance(name, str) and name:
        return name
    return "campaign"


def _json_body(payload) -> Tuple[str, bytes]:
    return ("application/json; charset=utf-8",
            json.dumps(payload, sort_keys=True, indent=2).encode("utf-8"))


def _respond(etag: str, content_type: str, body: bytes,
             if_none_match: Optional[str], cache: str) -> Response:
    headers = {"ETag": etag, "X-Cache": cache, "Content-Type": content_type}
    if if_none_match is not None and if_none_match.strip() == etag:
        return 304, headers, b""
    return 200, headers, body


def _error(status: int, message: str) -> Response:
    body = json.dumps({"error": message}).encode("utf-8")
    return status, {"Content-Type": "application/json; charset=utf-8",
                    "X-Cache": "MISS"}, body


class _Handler(BaseHTTPRequestHandler):
    service: ResultsService  # injected by make_server

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        status, headers, body = self.service.handle(
            self.path, self.headers.get("If-None-Match"))
        self.send_response(status)
        for key, value in headers.items():
            self.send_header(key, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test output and CI logs quiet


def make_server(store_path: str, host: str = "127.0.0.1", port: int = 0,
                cache_size: int = 64) -> Tuple[ThreadingHTTPServer, ResultsService]:
    """Build (but do not start) the HTTP server; ``port=0`` picks a free one."""
    service = ResultsService(store_path, cache_size=cache_size)
    handler = type("FabricHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    return server, service


def serve_forever(store_path: str, host: str = "127.0.0.1", port: int = 0,
                  cache_size: int = 64) -> int:
    """Blocking CLI entry point; prints the bound URL before serving."""
    server, _ = make_server(store_path, host=host, port=port,
                            cache_size=cache_size)
    bound_host, bound_port = server.server_address[:2]
    print(f"fabric: serving {store_path} at http://{bound_host}:{bound_port}",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0
