"""Work-stealing dispatch queue for distributed campaigns.

The queue is one SQLite file (WAL mode, shared filesystem) holding every
pending cell of one or more dispatched experiments.  Ownership is
*lease-based*: a worker claims a batch of cells under a TTL lease
(:meth:`FabricQueue.claim`), heartbeats to extend it while executing
(:meth:`FabricQueue.heartbeat`) and marks each cell done as its rows land in
the worker's shard store (:meth:`FabricQueue.complete`).  A worker that dies
simply stops heartbeating — once its leases expire, any other worker's next
``claim`` *steals* the cells, so a killed worker costs the campaign only its
in-flight batch, never a stuck queue.

Stealing is safe because the cell's content hash is an idempotency key: the
same spec always produces the same rows, so a cell that was executed twice
(killed after the shard write but before ``complete``) merges into one
canonical row (:mod:`repro.fabric.merge` deduplicates by hash).

The queue also records, per experiment, the *run context* (backend, base
seed, axis/parameter overrides) the dispatcher expanded the grid with, so
the merge can stamp it into the canonical store and the results service can
re-render the experiment's exact report.
"""

from __future__ import annotations

import json
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass
from threading import Lock
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments.engine import (
    ExperimentSpec,
    expand_experiment,
    spec_from_jsonable,
    spec_to_jsonable,
)
from repro.experiments.results import SCHEMA_VERSION, ResultsStore

#: Bump when the queue's table layout or claim protocol changes; a queue
#: written by an incompatible version is refused, never reinterpreted.
FABRIC_SCHEMA_VERSION = 1

#: Cell lifecycle states.  ``pending`` → claimable; ``leased`` → owned by a
#: worker until ``lease_expires`` (after which it is claimable again —
#: that is the work-stealing); ``done`` → rows are durable in a shard store.
CELL_STATES = ("pending", "leased", "done")


@dataclass(frozen=True)
class ClaimedCell:
    """One cell handed to a worker by :meth:`FabricQueue.claim`."""

    spec: ExperimentSpec
    spec_hash: str
    #: Whether this claim took over an expired lease from another worker.
    stolen: bool


@dataclass
class DispatchReport:
    """What one ``dispatch`` invocation enqueued."""

    experiment: str
    queue_path: str
    cells: int
    enqueued: int
    already_queued: int
    already_stored: int

    def format_line(self) -> str:
        return (f"fabric: {self.experiment}: {self.cells} cells -> "
                f"{self.enqueued} enqueued, {self.already_queued} already "
                f"queued, {self.already_stored} already stored")


class FabricQueue:
    """The durable dispatch queue (see module docstring).

    Safe for concurrent use from many worker processes: every claim runs in
    a ``BEGIN IMMEDIATE`` transaction so two workers can never claim the
    same cell, and a generous busy timeout absorbs write contention.  One
    instance may also be shared between the threads of one process (the
    worker's heartbeat thread) — all statements run under an internal lock.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = Lock()
        self._connection = sqlite3.connect(
            path, isolation_level=None, check_same_thread=False, timeout=30.0
        )
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.execute("PRAGMA busy_timeout=30000")
        self._create_schema()

    # ------------------------------------------------------------ lifecycle
    def _create_schema(self) -> None:
        with self._lock:
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            self._connection.execute(
                """
                CREATE TABLE IF NOT EXISTS cells (
                    spec_hash     TEXT PRIMARY KEY,
                    experiment    TEXT NOT NULL,
                    run_id        TEXT NOT NULL,
                    spec_json     TEXT NOT NULL,
                    state         TEXT NOT NULL DEFAULT 'pending',
                    owner         TEXT,
                    lease_expires REAL,
                    attempts      INTEGER NOT NULL DEFAULT 0
                )
                """
            )
            self._connection.execute(
                "CREATE INDEX IF NOT EXISTS idx_cells_state ON cells (state)"
            )
            for key, expected in (("fabric_schema_version", FABRIC_SCHEMA_VERSION),
                                  ("store_schema_version", SCHEMA_VERSION)):
                row = self._connection.execute(
                    "SELECT value FROM meta WHERE key = ?", (key,)
                ).fetchone()
                if row is None:
                    self._connection.execute(
                        "INSERT INTO meta (key, value) VALUES (?, ?)",
                        (key, str(expected)),
                    )
                elif int(row[0]) != expected:
                    raise ValueError(
                        f"fabric queue {self.path!r} has {key} {row[0]}, "
                        f"this code expects {expected}")

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "FabricQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @contextmanager
    def _transaction(self):
        with self._lock:
            self._connection.execute("BEGIN IMMEDIATE")
            try:
                yield self._connection
            except BaseException:
                self._connection.execute("ROLLBACK")
                raise
            else:
                self._connection.execute("COMMIT")

    # ------------------------------------------------------------- contexts
    def set_context(self, experiment: str, context: Mapping[str, object]) -> None:
        """Record the run context one experiment was dispatched with."""
        payload = json.dumps(context, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (f"context:{experiment}", payload),
            )

    def get_context(self, experiment: str) -> Optional[Dict[str, object]]:
        """The stored run context of one experiment, or ``None``."""
        with self._lock:
            row = self._connection.execute(
                "SELECT value FROM meta WHERE key = ?", (f"context:{experiment}",)
            ).fetchone()
        return None if row is None else json.loads(row[0])

    def iter_contexts(self) -> List:
        """Every ``(experiment, context_json)`` pair stored in the queue."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT key, value FROM meta WHERE key LIKE 'context:%' ORDER BY key"
            ).fetchall()
        return [(key.partition(":")[2], value) for key, value in rows]

    # ------------------------------------------------------------ enqueuing
    def add_cells(self, specs: Sequence[ExperimentSpec],
                  hashes: Sequence[str]) -> int:
        """Enqueue cells (idempotent); returns how many were newly added.

        A hash already present — pending, leased or done — is left exactly
        as it is, so re-dispatching the same grid never disturbs running
        workers or re-executes completed cells.
        """
        added = 0
        with self._transaction() as connection:
            for spec, digest in zip(specs, hashes):
                cursor = connection.execute(
                    "INSERT OR IGNORE INTO cells "
                    "(spec_hash, experiment, run_id, spec_json) VALUES (?, ?, ?, ?)",
                    (digest, spec.experiment, spec.run_id,
                     json.dumps(spec_to_jsonable(spec), sort_keys=True)),
                )
                added += cursor.rowcount
        return added

    # -------------------------------------------------------------- leasing
    def claim(self, owner: str, batch_size: int, lease_ttl: float,
              now: Optional[float] = None) -> List[ClaimedCell]:
        """Atomically claim up to ``batch_size`` cells under a TTL lease.

        Claimable cells are the ``pending`` ones plus any ``leased`` cell
        whose lease expired — claiming the latter is the work-stealing that
        recovers a killed worker's batch.  Cells come back in enqueue order,
        which is expansion order, so shard stores fill roughly in report
        order.
        """
        now = time.time() if now is None else now
        claimed: List[ClaimedCell] = []
        with self._transaction() as connection:
            rows = connection.execute(
                "SELECT spec_hash, spec_json, state FROM cells "
                "WHERE state = 'pending' "
                "OR (state = 'leased' AND lease_expires < ?) "
                "ORDER BY rowid LIMIT ?",
                (now, batch_size),
            ).fetchall()
            for spec_hash, spec_json, state in rows:
                connection.execute(
                    "UPDATE cells SET state = 'leased', owner = ?, "
                    "lease_expires = ?, attempts = attempts + 1 "
                    "WHERE spec_hash = ?",
                    (owner, now + lease_ttl, spec_hash),
                )
                claimed.append(ClaimedCell(
                    spec=spec_from_jsonable(json.loads(spec_json)),
                    spec_hash=spec_hash,
                    stolen=(state == "leased"),
                ))
        return claimed

    def heartbeat(self, owner: str, hashes: Sequence[str], lease_ttl: float,
                  now: Optional[float] = None) -> int:
        """Extend the lease on cells this owner still holds; returns count.

        A return value smaller than ``len(hashes)`` means some leases were
        lost (expired *and* stolen); the worker should stop executing those
        cells — their rows would be redundant, though never harmful.
        """
        if not hashes:
            return 0
        now = time.time() if now is None else now
        placeholders = ",".join("?" for _ in hashes)
        with self._lock:
            cursor = self._connection.execute(
                f"UPDATE cells SET lease_expires = ? WHERE spec_hash IN "
                f"({placeholders}) AND owner = ? AND state = 'leased'",
                (now + lease_ttl, *hashes, owner),
            )
        return cursor.rowcount

    def complete(self, owner: str, spec_hash: str) -> bool:
        """Mark one leased cell done; ``False`` when the lease was lost.

        Losing the race (another worker stole the expired lease) is benign:
        the rows are already durable in this worker's shard store and the
        merge deduplicates by content hash.
        """
        with self._lock:
            cursor = self._connection.execute(
                "UPDATE cells SET state = 'done', lease_expires = NULL "
                "WHERE spec_hash = ? AND owner = ? AND state = 'leased'",
                (spec_hash, owner),
            )
        return cursor.rowcount > 0

    def release(self, owner: str) -> int:
        """Return this owner's unfinished leases to ``pending`` (clean exit)."""
        with self._lock:
            cursor = self._connection.execute(
                "UPDATE cells SET state = 'pending', owner = NULL, "
                "lease_expires = NULL WHERE owner = ? AND state = 'leased'",
                (owner,),
            )
        return cursor.rowcount

    # ------------------------------------------------------------- progress
    def counts(self) -> Dict[str, int]:
        """Cells per state (absent states map to 0)."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT state, COUNT(*) FROM cells GROUP BY state"
            ).fetchall()
        result = {state: 0 for state in CELL_STATES}
        result.update(dict(rows))
        return result

    def unfinished(self) -> int:
        """Cells not yet done (pending plus leased)."""
        with self._lock:
            return self._connection.execute(
                "SELECT COUNT(*) FROM cells WHERE state != 'done'"
            ).fetchone()[0]

    def claimable(self, now: Optional[float] = None) -> int:
        """Cells a ``claim`` issued right now would consider."""
        now = time.time() if now is None else now
        with self._lock:
            return self._connection.execute(
                "SELECT COUNT(*) FROM cells WHERE state = 'pending' "
                "OR (state = 'leased' AND lease_expires < ?)",
                (now,),
            ).fetchone()[0]


def dispatch_experiment(
    queue_path: str,
    experiment: str,
    backend: Optional[str] = None,
    base_seed: Optional[int] = None,
    axes: Optional[Mapping[str, Sequence]] = None,
    params: Optional[Mapping[str, object]] = None,
    resume_store: Optional[ResultsStore] = None,
) -> DispatchReport:
    """Expand one experiment and enqueue its missing cells for workers.

    ``resume_store`` (typically the canonical merged store of a previous
    run) filters out cells whose content hash is already completed, exactly
    like the engine's own resume path.  The run context is recorded in the
    queue so ``merge`` can stamp it into the canonical store for the
    results service.
    """
    _, specs, hashes = expand_experiment(
        experiment, backend=backend, base_seed=base_seed, axes=axes, params=params)
    stored = set()
    if resume_store is not None:
        stored = resume_store.completed_hashes(hashes)
    pending = [(spec, digest) for spec, digest in zip(specs, hashes)
               if digest not in stored]
    with FabricQueue(queue_path) as queue:
        queue.set_context(experiment, {
            "backend": backend,
            "base_seed": base_seed,
            "axes": {name: list(values) for name, values in (axes or {}).items()},
            "params": dict(params or {}),
        })
        added = queue.add_cells([spec for spec, _ in pending],
                                [digest for _, digest in pending])
    return DispatchReport(
        experiment=experiment,
        queue_path=queue_path,
        cells=len(specs),
        enqueued=added,
        already_queued=len(pending) - added,
        already_stored=len(stored),
    )
