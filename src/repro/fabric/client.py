"""Thin stdlib client of the fabric results service.

Used by ``python -m repro.experiments report --url …`` and by anything that
wants stored campaign results without touching the SQLite file — the
service's ETag contract means a caller that remembers the last ETag pays a
``304`` (no body) whenever nothing changed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional
from urllib.error import HTTPError
from urllib.request import Request, urlopen


@dataclass(frozen=True)
class FetchResult:
    """One service response (``status`` 304 ⇒ ``body`` is empty)."""

    status: int
    body: bytes
    etag: Optional[str]
    cache: Optional[str]

    @property
    def not_modified(self) -> bool:
        return self.status == 304

    def text(self) -> str:
        return self.body.decode("utf-8")


def fetch(url: str, etag: Optional[str] = None, timeout: float = 10.0) -> FetchResult:
    """GET one service URL, optionally revalidating a previous ETag."""
    request = Request(url)
    if etag is not None:
        request.add_header("If-None-Match", etag)
    try:
        with urlopen(request, timeout=timeout) as response:
            return FetchResult(
                status=response.status,
                body=response.read(),
                etag=response.headers.get("ETag"),
                cache=response.headers.get("X-Cache"),
            )
    except HTTPError as error:
        # 304 arrives as an HTTPError in urllib; real errors carry a JSON body.
        body = error.read()
        return FetchResult(status=error.code, body=body,
                           etag=error.headers.get("ETag"),
                           cache=error.headers.get("X-Cache"))


def _base(url: str) -> str:
    return url.rstrip("/")


def fetch_experiments(base_url: str, timeout: float = 10.0) -> List[dict]:
    """The service's experiment index as a list of dicts."""
    result = fetch(f"{_base(base_url)}/experiments", timeout=timeout)
    _raise_for_status(result)
    return json.loads(result.text())["experiments"]


def fetch_rows(base_url: str, experiment: str, timeout: float = 10.0) -> List[dict]:
    """Every flat result row of one experiment."""
    result = fetch(f"{_base(base_url)}/experiments/{experiment}/rows",
                   timeout=timeout)
    _raise_for_status(result)
    return json.loads(result.text())


def fetch_report(base_url: str, experiment: str, etag: Optional[str] = None,
                 timeout: float = 10.0) -> FetchResult:
    """One experiment's plain-text report (or 304 when ``etag`` still holds)."""
    return fetch(f"{_base(base_url)}/experiments/{experiment}/report",
                 etag=etag, timeout=timeout)


def _raise_for_status(result: FetchResult) -> None:
    if result.status != 200:
        try:
            message = json.loads(result.text()).get("error", result.text())
        except (ValueError, UnicodeDecodeError):
            message = f"HTTP {result.status}"
        raise RuntimeError(f"results service error: {message}")
