"""Composable, content-hashable scenario profiles.

A :class:`ScenarioProfile` is a named, frozen bundle of experiment
parameters — a mobility regime, a threat composition, or a full composite
scenario — registered in a process-wide registry.  Profiles are the unit the
scenario fuzzer samples (:mod:`repro.scenarios.fuzzer`), the validation
harness cross-checks (:mod:`repro.validation`) and the experiment engine
sweeps: the engine-level ``profile`` parameter resolves through
:func:`apply_profile`, so ``--axis profile=gauss-markov,rpgm`` turns any
registered experiment into a scenario sweep.

Precedence: profile parameters sit *under* the cell's own parameters — an
experiment's declared axes and fixed parameters always win — and *over* the
backend defaults.  That is what makes profiles composable: ``run mobility
--param profile=rpgm`` sweeps the experiment's ``max_speed`` axis inside the
profile's group-mobility regime instead of fighting it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class ScenarioProfile:
    """One named scenario regime (frozen, content-hashable).

    ``kind`` is ``"mobility"``, ``"threat"`` or ``"composite"`` — purely
    descriptive, used by listings and the fuzzer's sampling space.
    ``differential`` marks profiles whose netsim execution models the same
    process the oracle backend does (link-spoofing attacker + liars), i.e.
    the ones the oracle↔netsim differential harness may compare; threat
    compositions the oracle loop cannot express (grayholes, coordinated
    cliques) are invariant-checked only.
    """

    name: str
    description: str
    kind: str
    params: Tuple[Tuple[str, object], ...] = ()
    differential: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("mobility", "threat", "composite"):
            raise ValueError(f"unknown profile kind {self.kind!r}")
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    def params_dict(self) -> Dict[str, object]:
        """The profile's parameters as a plain dict."""
        return dict(self.params)

    def content_digest(self) -> str:
        """SHA-256 content hash of the fully-resolved profile.

        Two profiles collide only when they would configure the identical
        scenario, so the digest is a safe cache/dedup key for fuzzing
        corpora and stored validation results.
        """
        payload = {
            "name": self.name,
            "kind": self.kind,
            "params": {k: v for k, v in self.params},
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


_PROFILES: Dict[str, ScenarioProfile] = {}


def register_profile(profile: ScenarioProfile) -> ScenarioProfile:
    """Register (or replace) a scenario profile; returns it."""
    _PROFILES[profile.name] = profile
    return profile


def get_profile(name: str) -> ScenarioProfile:
    """Look up a registered profile by name."""
    try:
        return _PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(_PROFILES)) or "(none)"
        raise KeyError(f"unknown scenario profile {name!r} (registered: {known})") from None


def list_profiles(kind: Optional[str] = None) -> List[ScenarioProfile]:
    """Every registered profile (optionally restricted to one kind), by name."""
    return [
        _PROFILES[name] for name in sorted(_PROFILES)
        if kind is None or _PROFILES[name].kind == kind
    ]


def apply_profile(params: Mapping[str, object]) -> Dict[str, object]:
    """Merge the named profile's parameters under ``params``.

    ``params["profile"]`` names the profile; the cell's own parameters win
    on conflict (see the module docstring for why).  Raises ``ValueError``
    for unknown names so a typo'd ``--axis profile=...`` fails fast instead
    of running the default scenario under a wrong label.
    """
    name = params.get("profile")
    if not name:
        return dict(params)
    try:
        profile = get_profile(str(name))
    except KeyError as error:
        raise ValueError(str(error.args[0])) from None
    merged: Dict[str, object] = profile.params_dict()
    merged.update(params)
    return merged


# ---------------------------------------------------------------- built-ins
#: Mobility regimes.  Speeds are deliberately modest: the investigation
#: needs the suspect's neighbourhood to persist for at least one detection
#: cycle to say anything at all.
GAUSS_MARKOV_PROFILE = register_profile(ScenarioProfile(
    name="gauss-markov",
    description="smooth temporally-correlated motion (Gauss-Markov, 2 m/s mean)",
    kind="mobility",
    params=(("mobility_model", "gauss-markov"), ("max_speed", 2.0)),
))

RPGM_PROFILE = register_profile(ScenarioProfile(
    name="rpgm",
    description="reference-point group mobility: platoons moving as clusters",
    kind="mobility",
    params=(("mobility_model", "rpgm"), ("max_speed", 2.0)),
))

WAYPOINT_PROFILE = register_profile(ScenarioProfile(
    name="waypoint",
    description="classic random-waypoint motion at 2 m/s",
    kind="mobility",
    params=(("mobility_model", "waypoint"), ("max_speed", 2.0)),
))

#: Threat compositions.  The oracle round loop only models the paper's
#: link-spoofing + independent liars, so the richer compositions are
#: netsim-only (``differential=False``) and validated structurally.
ONOFF_GRAYHOLE_PROFILE = register_profile(ScenarioProfile(
    name="onoff-grayhole",
    description="spoofing attacker that also drops relayed traffic in bursts",
    kind="threat",
    params=(("threat", "onoff-grayhole"), ("drop_probability", 0.8)),
    differential=False,
))

LIAR_CLIQUE_PROFILE = register_profile(ScenarioProfile(
    name="liar-clique",
    description="colluding liars coordinating one shared answer stream",
    kind="threat",
    params=(("threat", "liar-clique"),),
    differential=False,
))

GRAYHOLE_LIAR_PROFILE = register_profile(ScenarioProfile(
    name="grayhole-liar",
    description="stacked threat: grayhole dropping + self-shielding lies",
    kind="threat",
    params=(("threat", "grayhole-liar"), ("drop_probability", 0.7)),
    differential=False,
))

#: Adaptive adversaries (:mod:`repro.attacks.adaptive`): closed-loop threat
#: compositions that observe the detector through a read-only trust probe.
#: The oracle loop *can* express their dynamics (the ``adaptivity`` config
#: field), but the two backends implement them independently rather than
#: modelling one shared stochastic process, so they stay
#: ``differential=False``.
THROTTLING_GRAYHOLE_PROFILE = register_profile(ScenarioProfile(
    name="throttling-grayhole",
    description="adaptive grayhole riding the classification threshold via a trust probe",
    kind="threat",
    params=(("threat", "throttling-grayhole"), ("drop_probability", 0.8),
            ("adaptivity", "throttling")),
    differential=False,
))

ROTATING_CLIQUE_PROFILE = register_profile(ScenarioProfile(
    name="rotating-liar-clique",
    description="liar clique rotating one active liar per epoch, rest honest",
    kind="threat",
    params=(("threat", "rotating-clique"), ("adaptivity", "rotating")),
    differential=False,
))

#: The paper's own regime, as an explicit baseline profile.
PAPER_BASELINE_PROFILE = register_profile(ScenarioProfile(
    name="paper-static",
    description="the paper's setting: static nodes, spoofing + independent liars",
    kind="composite",
    params=(("mobility_model", "static"), ("threat", "link-spoofing")),
))
