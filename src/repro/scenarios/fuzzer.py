"""Seeded scenario fuzzer: sample valid scenarios from a constrained space.

The fuzzer manufactures the "as many scenarios as you can imagine" corpus
the validation harness (:mod:`repro.validation`) runs: each sample picks a
registered :class:`~repro.scenarios.profiles.ScenarioProfile` and perturbs
the orthogonal knobs around it — population size, liar head-count, channel
model, spoofing expression — inside a *constrained* space where every
combination is a well-formed scenario (liars stay a minority, node counts
satisfy the builder's preconditions, speeds stay low enough for an
investigation to be physically possible).

Every sample derives from :func:`repro.seeding.stable_seed`, so a corpus is
a pure function of ``(base_seed, index)``: the same ``validate --seeds N``
invocation reproduces the same scenarios on any machine, any process count
and any Python version, and a reported violation names the exact sample.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.scenarios.profiles import ScenarioProfile, get_profile, list_profiles
from repro.seeding import stable_seed

#: The constrained sampling space.  Deliberately conservative: validation
#: wants scenarios where the detector *can* work (so divergence means a bug,
#: not an impossible setting), hence minority liar counts, modest loss and
#: low speeds.
NODE_COUNTS: Sequence[int] = (8, 10, 12, 16)
LOSS_CHOICES: Sequence[Tuple[str, float]] = (
    ("bernoulli", 0.0),
    ("bernoulli", 0.05),
    ("bernoulli", 0.1),
    ("distance", 0.3),
)
ATTACK_VARIANTS: Sequence[str] = (
    "false_existing_link",
    "non_existent_neighbor",
    "omitted_neighbor",
)
#: Rounds (oracle) == detection cycles (netsim) per fuzzed run.  8 cycles
#: give the netsim victim enough post-attack time for E1 triggers to fire
#: in most sampled topologies, which is what makes the differential step
#: metrics comparable rather than vacuously skipped.
FUZZ_ROUNDS = 8


def reproducer_command(params: Mapping[str, object], seed: int,
                       experiment: str = "figure1",
                       backend: str = "netsim") -> str:
    """A ``python -m repro.experiments run`` line re-running one cell.

    The single source of every reproducer the validation harness prints:
    pass a raw sample's parameters (profile included — the engine expands
    it) or an already-expanded/minimized parameter set.
    """
    parts = [
        f"python -m repro.experiments run {experiment}",
        f"--backend {backend}",
        f"--seed {seed}",
    ]
    for name, value in sorted(params.items()):
        parts.append(f"--param {name}={value}")
    return " ".join(parts)


@dataclass(frozen=True)
class FuzzedScenario:
    """One fully-resolved fuzzer sample (frozen; safe to ship to workers)."""

    index: int
    seed: int
    profile: str
    params: Tuple[Tuple[str, object], ...]
    #: Whether the oracle↔netsim differential comparison applies (the
    #: profile models the process both backends implement).
    differential: bool
    #: Routing backend the sample runs on (``olsr`` unless the fuzzer was
    #: given a protocol axis).
    protocol: str = "olsr"

    def params_dict(self) -> Dict[str, object]:
        """The sample's flat parameters as a plain dict."""
        return dict(self.params)

    def run_id(self) -> str:
        """Human-readable identifier of the sample."""
        label = f"fuzz[{self.index}]/{self.profile}"
        if self.protocol != "olsr":
            label += f"/{self.protocol}"
        return f"{label}/seed={self.seed}"

    def cli_command(self, experiment: str = "figure1") -> str:
        """A ``python -m repro.experiments run`` line reproducing the cell."""
        return reproducer_command(self.params_dict(), self.seed, experiment)


class ScenarioFuzzer:
    """Seeded sampler over the constrained scenario space.

    ``profiles`` restricts sampling to the named profiles (default: every
    registered profile).  ``protocols`` adds a routing-backend axis: each
    sample additionally draws one of the named protocols (``olsr``,
    ``aodv``, ``geo``, …) and carries it as the ``protocol`` parameter.
    The default (``protocols=None``) samples exactly the historical
    OLSR-only corpus — byte for byte, since the protocol draw happens after
    every other draw and only when the axis is enabled.  Sample ``i`` of
    base seed ``s`` is identical across processes and platforms.
    """

    def __init__(self, base_seed: int = 0,
                 profiles: Optional[Sequence[str]] = None,
                 protocols: Optional[Sequence[str]] = None) -> None:
        self.base_seed = base_seed
        if profiles is None:
            self.profiles: List[ScenarioProfile] = list_profiles()
        else:
            self.profiles = [get_profile(name) for name in profiles]
        if not self.profiles:
            raise ValueError("no scenario profiles to fuzz")
        self.protocols: Optional[Tuple[str, ...]] = (
            tuple(protocols) if protocols is not None else None)
        if self.protocols is not None and not self.protocols:
            raise ValueError("no routing protocols to fuzz")

    def sample(self, index: int) -> FuzzedScenario:
        """The ``index``-th fuzzed scenario of this corpus."""
        rng = random.Random(stable_seed(self.base_seed, f"fuzz:{index}"))
        profile = self.profiles[rng.randrange(len(self.profiles))]

        total_nodes = NODE_COUNTS[rng.randrange(len(NODE_COUNTS))]
        # Liars stay a strict minority of the responders so detection is
        # information-theoretically possible in every sampled scenario.
        max_liars = max(0, (total_nodes - 2) // 4)
        liar_count = rng.randrange(max_liars + 1)
        loss_model, loss_probability = LOSS_CHOICES[rng.randrange(len(LOSS_CHOICES))]

        params: Dict[str, object] = {
            "profile": profile.name,
            "total_nodes": total_nodes,
            "liar_count": liar_count,
            "rounds": FUZZ_ROUNDS,
            "random_initial_trust": False,
            "loss_model": loss_model,
            "loss_probability": loss_probability,
        }
        if profile.differential:
            # Keep the spoofing expression both backends model.
            params["attack_variant"] = "false_existing_link"
        else:
            params["attack_variant"] = ATTACK_VARIANTS[rng.randrange(len(ATTACK_VARIANTS))]

        # The protocol draw comes LAST and happens only when the axis is
        # enabled, so the default corpus stays byte-identical to the
        # OLSR-only fuzzer of earlier releases.
        protocol = "olsr"
        differential = profile.differential
        if self.protocols is not None:
            protocol = self.protocols[rng.randrange(len(self.protocols))]
            params["protocol"] = protocol
            if protocol != "olsr":
                # The oracle backend models the OLSR-specific link-spoofing
                # process; other routing backends have no oracle twin.
                differential = False

        seed = stable_seed(self.base_seed, f"fuzz-seed:{index}")
        return FuzzedScenario(
            index=index,
            seed=seed,
            profile=profile.name,
            params=tuple(sorted(params.items())),
            differential=differential,
            protocol=protocol,
        )

    def corpus(self, count: int) -> Iterator[FuzzedScenario]:
        """The first ``count`` samples, in index order."""
        for index in range(count):
            yield self.sample(index)
