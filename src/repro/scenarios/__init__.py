"""Scenario library: composable, content-hashable scenario profiles.

This package turns "a scenario" into a first-class, named object:

* :mod:`repro.scenarios.profiles` — the :class:`ScenarioProfile` registry.
  A profile is a frozen bundle of experiment parameters (a mobility regime,
  a threat composition, or a full composite scenario) with a SHA-256
  content digest.  The engine-level ``profile`` parameter resolves through
  :func:`apply_profile`, so every registered experiment can sweep profiles
  from the unified CLI::

      python -m repro.experiments run figure1 --backend netsim \
          --axis profile=paper-static,gauss-markov,rpgm
      python -m repro.experiments run figure3 --backend netsim \
          --param profile=liar-clique

* :mod:`repro.scenarios.fuzzer` — the seeded scenario fuzzer.  It samples
  valid scenarios from a constrained space (profile × population × liars ×
  channel × spoofing expression); corpora are pure functions of
  ``(base_seed, index)``.  ``python -m repro.experiments validate`` runs the
  corpus through the structural invariants and the oracle↔netsim
  differential harness of :mod:`repro.validation`.

How to add a scenario profile
-----------------------------
1. If the profile needs new *mechanics*, implement them first: a mobility
   model in :mod:`repro.netsim.mobility` (implement ``place``/``install``),
   or an attack/composition in :mod:`repro.attacks` (subclass ``Attack``,
   install hooks only).  Wire a name for it through
   :func:`repro.experiments.scenario.build_manet_scenario` (the
   ``mobility_model`` / ``threat`` switches) and add any new knob to
   ``NETSIM_PARAMS`` in :mod:`repro.experiments.backends` so the CLI
   validates it.
2. Declare the profile in :mod:`repro.scenarios.profiles`::

       MY_PROFILE = register_profile(ScenarioProfile(
           name="my-profile",
           description="one line for listings",
           kind="mobility",            # or "threat" / "composite"
           params=(("mobility_model", "my-model"), ("max_speed", 3.0)),
           differential=False,          # True only if the oracle backend
       ))                               # models the same process
3. That's it: the profile is now sweepable (``--axis profile=my-profile``),
   fuzzable (the fuzzer samples every registered profile) and validated
   (``validate`` runs it through the invariant checkers).  Add it to the
   expectations in ``tests/test_scenarios_profiles.py``.

How to add an invariant
-----------------------
Structural invariants live in :mod:`repro.validation.invariants`.  Write a
``check_*`` function taking a built
:class:`~repro.experiments.scenario.SimulationScenario` and returning a list
of :class:`~repro.validation.invariants.InvariantViolation`; register it in
``ALL_INVARIANTS`` there.  Every ``validate`` run and every fuzzed scenario
then enforces it.  Keep checkers read-only — they run against live
simulation state after the run and must not mutate it.
"""

from repro.scenarios.fuzzer import (
    FuzzedScenario,
    ScenarioFuzzer,
    reproducer_command,
)
from repro.scenarios.profiles import (
    ScenarioProfile,
    apply_profile,
    get_profile,
    list_profiles,
    register_profile,
)

__all__ = [
    "FuzzedScenario",
    "ScenarioFuzzer",
    "ScenarioProfile",
    "apply_profile",
    "get_profile",
    "list_profiles",
    "register_profile",
    "reproducer_command",
]
