"""repro — Trust-enabled link spoofing detection in MANETs.

Reproduction of *"Trust-enabled Link Spoofing Detection in MANET"*
(Alattar, Sailhan, Bourgeois — ICDCS 2012 workshops).  The package bundles:

* ``repro.netsim`` — a discrete-event MANET simulator,
* ``repro.olsr`` — a pure-Python OLSR (RFC 3626) implementation emitting
  audit logs,
* ``repro.logs`` — the audit-log records, parser and analyzer,
* ``repro.attacks`` — link spoofing and the other attacks of the paper's
  taxonomy, plus colluding liars,
* ``repro.core`` — the log/signature-based detector, the cooperative
  investigation (Algorithm 1) and the decision rule,
* ``repro.trust`` — the entropy-based trust system with the confidence
  interval,
* ``repro.baselines`` — Watchdog/Pathrater, CAP-OLSR, Beta reputation and
  report averaging,
* ``repro.metrics`` and ``repro.experiments`` — the evaluation harness
  regenerating the paper's figures.

Quick start::

    from repro.experiments import run_figure1
    result = run_figure1()
    print(result.rows())
"""

from repro.core import (
    DecisionOutcome,
    DetectionConfig,
    DetectorNode,
    LinkSpoofingVariant,
    aggregate_detection,
    decide,
    evaluate_investigation,
)
from repro.experiments import (
    RoundBasedExperiment,
    ScenarioConfig,
    build_canonical_scenario,
    build_manet_scenario,
    run_ablation,
    run_confidence_sweep,
    run_figure1,
    run_figure2,
    run_figure3,
)
from repro.trust import TrustManager, TrustParameters, confidence_interval

__version__ = "1.0.0"

# Lazy campaign/results exports (PEP 562); see repro.experiments.__getattr__.
_CAMPAIGN_EXPORTS = ("CampaignGrid", "CampaignResult", "run_campaign")
_RESULTS_EXPORTS = ("ResultsStore",)


def __getattr__(name):
    if name in _CAMPAIGN_EXPORTS:
        from repro.experiments import campaign

        return getattr(campaign, name)
    if name in _RESULTS_EXPORTS:
        from repro.experiments import results

        return getattr(results, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CampaignGrid",
    "CampaignResult",
    "DecisionOutcome",
    "DetectionConfig",
    "DetectorNode",
    "LinkSpoofingVariant",
    "ResultsStore",
    "RoundBasedExperiment",
    "ScenarioConfig",
    "TrustManager",
    "TrustParameters",
    "__version__",
    "aggregate_detection",
    "build_canonical_scenario",
    "build_manet_scenario",
    "confidence_interval",
    "decide",
    "evaluate_investigation",
    "run_ablation",
    "run_campaign",
    "run_confidence_sweep",
    "run_figure1",
    "run_figure2",
    "run_figure3",
]
