"""Optional numpy access shared by the vectorised fast paths.

The batch-tick code (medium delivery, MPR selection, trust updates) runs on
numpy arrays when numpy is importable and transparently falls back to the
scalar implementations when it is not.  Centralising the lazy import here
keeps every call site to a single, cheap function call and gives tests one
place to monkeypatch when they need to force the pure-Python paths.
"""

from __future__ import annotations

_numpy = None
_checked = False


def numpy_or_none():
    """The imported ``numpy`` module, or ``None`` when unavailable."""
    global _numpy, _checked
    if not _checked:
        _checked = True
        try:
            import numpy
        except ImportError:  # pragma: no cover - exercised via monkeypatch
            numpy = None
        _numpy = numpy
    return _numpy
