"""Cooperative investigation (Algorithm 1 of the paper).

When a node observes a triggering evidence (E1 or E2) about one of its MPRs,
it interrogates the 2-hop neighbours that are covered by both the replaced and
the replacing MPR: each of them is asked to *verify the link* it allegedly
shares with the suspect.  Requests must not travel through the suspect (or a
colluding intruder); when no alternative path exists the responder cannot be
reached and the answer is recorded as missing (the E3 situation).

The answers (+1 confirm / −1 deny / 0 missing) are aggregated with the trust
system (Eq. 8) and fed to the decision rule (Eq. 10); the outcome updates the
trust of the suspect and of every responder.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Protocol, Sequence, Set

from repro.core.decision import (
    ANSWER_CONFIRM,
    ANSWER_DENY,
    ANSWER_MISSING,
    DecisionOutcome,
    DetectionDecision,
    evaluate_investigation,
)
from repro.seeding import stable_seed
from repro.trust.evidence import EvidenceBatch, EvidenceKind, TrustEvidence
from repro.trust.manager import TrustManager
from repro.trust.recommendation import RecommendationManager


def _transport_rng(kind: str, owner: str) -> random.Random:
    """Default per-owner loss RNG for a query transport.

    Seeding every transport with a shared constant (the old
    ``random.Random(0)`` default) made all nodes draw the *identical* loss
    sequence, correlating query losses across the whole network; deriving the
    seed from the owning node's id keeps the default deterministic while
    decorrelating the instances (same scheme as the campaign's stable
    per-cell seeds).
    """
    return random.Random(stable_seed(0, f"{kind}:{owner}"))


class QueryTransport(Protocol):
    """Delivery mechanism for link-verification requests."""

    def verify_link(
        self, requester: str, responder: str, suspect: str,
        link_peer: Optional[str] = None,
    ) -> Optional[bool]:
        """Ask ``responder`` to verify a link advertised by ``suspect``.

        With ``link_peer=None`` the question is "is ``suspect`` one of *your*
        symmetric neighbours?" (the Algorithm 1 per-own-link check).  With an
        explicit ``link_peer`` the question is about the specific contested
        link ``suspect — link_peer`` (the E4/E5 verification): the responder
        answers from its knowledge of ``link_peer``'s advertisements.

        Returns ``True`` when the responder confirms the link, ``False`` when
        it denies it, and ``None`` when it has no knowledge or no answer
        arrives before the timeout (unreachable responder, lost request/reply,
        crashed node…).
        """
        ...


class OracleTransport:
    """Transport that queries responder objects directly.

    Used by the round-based experiment driver: each responder object must
    expose ``answer_link_query(suspect, requester) -> Optional[bool]``.  An
    optional Bernoulli loss probability models lost requests or replies.
    """

    def __init__(
        self,
        responders: Mapping[str, object],
        loss_probability: float = 0.0,
        rng: Optional[random.Random] = None,
        owner: str = "",
    ) -> None:
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss_probability must be in [0, 1]")
        self._responders = dict(responders)
        self.loss_probability = loss_probability
        self.rng = rng or _transport_rng("oracle-transport", owner)

    def add_responder(self, node_id: str, responder: object) -> None:
        """Register an additional responder."""
        self._responders[node_id] = responder

    def verify_link(self, requester: str, responder: str, suspect: str,
                    link_peer: Optional[str] = None) -> Optional[bool]:
        target = self._responders.get(responder)
        if target is None:
            return None
        if self.loss_probability and self.rng.random() < self.loss_probability:
            return None
        return _ask(target, suspect, requester, link_peer)


class CallableTransport:
    """Transport backed by a plain callable (handy for tests)."""

    def __init__(self, func: Callable[..., Optional[bool]]) -> None:
        self._func = func

    def verify_link(self, requester: str, responder: str, suspect: str,
                    link_peer: Optional[str] = None) -> Optional[bool]:
        try:
            return self._func(requester, responder, suspect, link_peer)
        except TypeError:
            return self._func(requester, responder, suspect)


def _ask(target, suspect: str, requester: str, link_peer: Optional[str]) -> Optional[bool]:
    """Call a responder, tolerating responders without link_peer support."""
    try:
        return target.answer_link_query(suspect, requester, link_peer)
    except TypeError:
        return target.answer_link_query(suspect, requester)


@dataclass
class RoundResult:
    """Answers and decision of one investigation round."""

    round_index: int
    suspect: str
    answers: Dict[str, float]
    decision: DetectionDecision
    responders_reached: List[str] = field(default_factory=list)
    responders_unreached: List[str] = field(default_factory=list)


@dataclass
class InvestigationState:
    """Per-suspect bookkeeping across rounds (Algorithm 1 state)."""

    suspect: str
    responders: List[str]
    #: Contested links (suspect — peer) under verification.  When empty the
    #: investigation falls back to the per-own-link Algorithm 1 check.
    contested_links: List[str] = field(default_factory=list)
    rounds: List[RoundResult] = field(default_factory=list)
    agreeing: Set[str] = field(default_factory=set)
    disagreeing: Set[str] = field(default_factory=set)
    unverified: bool = False
    closed: bool = False
    final_outcome: Optional[DecisionOutcome] = None

    @property
    def round_count(self) -> int:
        """Number of rounds already executed."""
        return len(self.rounds)

    @property
    def detect_trajectory(self) -> List[float]:
        """Detect^{A,I} value per round (Figure 3 material)."""
        return [r.decision.detect_value for r in self.rounds]


class CooperativeInvestigator:
    """Drives Algorithm 1 for a single investigating node ``owner``.

    Parameters
    ----------
    owner:
        Identifier of the investigating node ``A``.
    transport:
        :class:`QueryTransport` used to reach the responders.
    trust_manager:
        Direct-trust store of the investigator (Eq. 5 state).
    recommendation_manager:
        Optional recommendation-trust store updated from answer accuracy.
    gamma / confidence_level:
        Decision-rule parameters (Eq. 10 / Eq. 9).
    use_trust_weighting:
        Set to ``False`` for the unweighted-vote ablation.
    close_on_decision:
        Terminate the investigation as soon as the decision rule returns a
        conclusive outcome (the paper notes an investigation "is rather
        terminated at any round by confirming/denying the existence of a link
        spoofing when the investigation result exceeds" a threshold).
    """

    def __init__(
        self,
        owner: str,
        transport: QueryTransport,
        trust_manager: TrustManager,
        recommendation_manager: Optional[RecommendationManager] = None,
        gamma: float = 0.6,
        confidence_level: float = 0.95,
        use_trust_weighting: bool = True,
        close_on_decision: bool = False,
    ) -> None:
        self.owner = owner
        self.transport = transport
        self.trust = trust_manager
        self.recommendations = recommendation_manager
        self.gamma = gamma
        self.confidence_level = confidence_level
        self.use_trust_weighting = use_trust_weighting
        self.close_on_decision = close_on_decision
        self._investigations: Dict[str, InvestigationState] = {}

    # --------------------------------------------------------------- control
    def open_investigation(
        self,
        suspect: str,
        responders: Sequence[str],
        contested_links: Optional[Sequence[str]] = None,
    ) -> InvestigationState:
        """Open (or reuse) an investigation about ``suspect``.

        ``responders`` are the common 2-hop neighbours computed by
        :func:`common_two_hop_neighbors` — the nodes whose links with the
        suspect must be verified.  ``contested_links`` optionally narrows the
        verification to specific advertised links (the suspiciously *added*
        neighbours); every responder is then asked about those links only.
        """
        state = self._investigations.get(suspect)
        if state is None or state.closed:
            state = InvestigationState(suspect=suspect, responders=sorted(set(responders)))
            self._investigations[suspect] = state
        else:
            merged = set(state.responders) | set(responders)
            state.responders = sorted(merged)
        if contested_links:
            merged_links = set(state.contested_links) | set(contested_links)
            merged_links.discard(suspect)
            state.contested_links = sorted(merged_links)
        if not state.responders:
            state.unverified = True
        return state

    def state_of(self, suspect: str) -> Optional[InvestigationState]:
        """Current investigation state about ``suspect`` (None when never opened)."""
        return self._investigations.get(suspect)

    def open_investigations(self) -> List[str]:
        """Suspects with an investigation that is not closed yet."""
        return sorted(s for s, st in self._investigations.items() if not st.closed)

    # ----------------------------------------------------------------- rounds
    def run_round(self, suspect: str, now: float = 0.0) -> RoundResult:
        """Execute one investigation round about ``suspect``.

        Every responder is queried through the transport; the answers are
        aggregated (Eq. 8), the decision rule applied (Eq. 10) and the trust of
        the suspect and of every responder updated from the outcome.
        """
        state = self._investigations.get(suspect)
        if state is None:
            raise KeyError(f"no open investigation about {suspect!r}")
        if state.closed:
            raise RuntimeError(f"investigation about {suspect!r} is already closed")

        answers: Dict[str, float] = {}
        reached: List[str] = []
        unreached: List[str] = []
        for responder in state.responders:
            reply = self._query_responder(state, responder, suspect)
            if reply is None:
                answers[responder] = ANSWER_MISSING
                unreached.append(responder)
            elif reply:
                answers[responder] = ANSWER_CONFIRM
                reached.append(responder)
            else:
                answers[responder] = ANSWER_DENY
                reached.append(responder)

        trust_view = {responder: self.trust.trust_of(responder) for responder in answers}
        decision = evaluate_investigation(
            suspect=suspect,
            answers=answers,
            trust=trust_view,
            gamma=self.gamma,
            confidence_level=self.confidence_level,
            use_trust_weighting=self.use_trust_weighting,
        )
        result = RoundResult(
            round_index=state.round_count,
            suspect=suspect,
            answers=answers,
            decision=decision,
            responders_reached=reached,
            responders_unreached=unreached,
        )
        state.rounds.append(result)
        self._update_trust_from_round(state, result, now)
        self._update_agreement_sets(state, result)
        if not reached:
            state.unverified = True
        if self.close_on_decision and decision.is_final:
            state.closed = True
            state.final_outcome = decision.outcome
        return result

    def _query_responder(self, state: InvestigationState, responder: str,
                         suspect: str) -> Optional[bool]:
        """Query one responder, honouring the contested-link mode.

        Without contested links the responder verifies its *own* link with the
        suspect.  With contested links it is asked about each of them; per
        Expression 4 a single witnessed falsification (E4/E5) is damning, so a
        single denial yields an overall deny, a confirmation without any
        denial yields confirm, and no knowledge at all yields no answer.
        """
        if not state.contested_links:
            return self.transport.verify_link(self.owner, responder, suspect)
        saw_confirm = False
        saw_answer = False
        for link_peer in state.contested_links:
            reply = self.transport.verify_link(self.owner, responder, suspect,
                                               link_peer=link_peer)
            if reply is None:
                continue
            saw_answer = True
            if not reply:
                return False
            saw_confirm = True
        if not saw_answer:
            return None
        return saw_confirm

    def close(self, suspect: str) -> Optional[DecisionOutcome]:
        """Force-close an investigation and return its last outcome."""
        state = self._investigations.get(suspect)
        if state is None:
            return None
        state.closed = True
        if state.rounds:
            state.final_outcome = state.rounds[-1].decision.outcome
        return state.final_outcome

    # -------------------------------------------------------------- internals
    def _update_trust_from_round(self, state: InvestigationState,
                                 result: RoundResult, now: float) -> None:
        detect = result.decision.detect_value
        batch = EvidenceBatch()

        # Evidence about the responders: an answer consistent with the round's
        # conclusion is beneficial, a contradicting answer is harmful
        # (Properties 1 and 2).  The conclusion used as reference is the
        # majority opinion of the received answers: under the paper's threat
        # model the colluders are a minority, so the majority identifies the
        # incorrect answers regardless of how the initial trust was drawn.
        received = [a for a in result.answers.values() if a != ANSWER_MISSING]
        majority = sum(received) / len(received) if received else 0.0
        if abs(majority) > 1e-9:
            reference_sign = 1.0 if majority > 0 else -1.0
            for responder, answer in result.answers.items():
                if answer == ANSWER_MISSING:
                    continue
                agreed = (answer * reference_sign) > 0
                kind = (
                    EvidenceKind.INVESTIGATION_AGREEMENT
                    if agreed
                    else EvidenceKind.INVESTIGATION_DISAGREEMENT
                )
                value = 1.0 if agreed else -1.0
                batch.add(
                    TrustEvidence(
                        observer=self.owner,
                        subject=responder,
                        kind=kind,
                        value=value,
                        timestamp=now,
                        firsthand=True,
                    )
                )
                if self.recommendations is not None:
                    self.recommendations.record_outcome(responder, agreed)

        # Evidence about the suspect itself: the aggregate sign *is* the
        # second-hand evidence of spoofing (negative) or correct behaviour
        # (positive).
        if abs(detect) > 1e-9:
            kind = EvidenceKind.LINK_SPOOFING if detect < 0 else EvidenceKind.CONSISTENT_ADVERTISEMENT
            batch.add(
                TrustEvidence(
                    observer=self.owner,
                    subject=state.suspect,
                    kind=kind,
                    value=max(-1.0, min(1.0, detect)),
                    timestamp=now,
                    firsthand=False,
                    imminent=detect < -0.5,
                )
            )

        # One update_all call for the whole slot: wide batches take the
        # manager's vectorised Eq. 5 path.
        self.trust.update_all(batch.by_subject(), now=now)

    def _update_agreement_sets(self, state: InvestigationState, result: RoundResult) -> None:
        for responder, answer in result.answers.items():
            if answer == ANSWER_DENY:
                state.disagreeing.add(responder)
                state.agreeing.discard(responder)
            elif answer == ANSWER_CONFIRM:
                state.agreeing.add(responder)
                state.disagreeing.discard(responder)


# ---------------------------------------------------------------------------
# Algorithm 1 helpers
# ---------------------------------------------------------------------------
def common_two_hop_neighbors(
    coverage_of: Callable[[str], Set[str]],
    suspicious_mpr: str,
    replaced_mprs: Sequence[str],
    exclude: Optional[Set[str]] = None,
) -> Set[str]:
    """Line 4 of Algorithm 1: 2-hop neighbours covered by both the suspicious
    (replacing) MPR and at least one of the replaced MPRs.

    When there is no replaced MPR (an E2-triggered investigation), the
    responders are simply the nodes the suspicious MPR claims to cover.
    ``exclude`` removes the investigator itself and any already-suspected
    colluder from the responder set.
    """
    exclude = exclude or set()
    suspect_coverage = set(coverage_of(suspicious_mpr))
    if replaced_mprs:
        replaced_coverage: Set[str] = set()
        for replaced in replaced_mprs:
            replaced_coverage |= set(coverage_of(replaced))
        common = suspect_coverage & replaced_coverage
        if not common:
            common = suspect_coverage
    else:
        common = suspect_coverage
    return {n for n in common if n not in exclude and n != suspicious_mpr}


def path_avoiding(
    connectivity: Mapping[str, Sequence[str]],
    source: str,
    target: str,
    avoid: Set[str],
) -> Optional[List[str]]:
    """Breadth-first path from ``source`` to ``target`` avoiding the ``avoid`` set.

    Returns the node sequence (including endpoints) or ``None`` when the
    responder is unreachable without crossing a suspect — the situation where
    the request would have to transit the suspicious MPR (evidence E3).
    """
    if source == target:
        return [source]
    if target in avoid:
        return None
    visited = {source}
    queue: List[List[str]] = [[source]]
    while queue:
        path = queue.pop(0)
        current = path[-1]
        for neighbor in connectivity.get(current, []):
            if neighbor in visited or neighbor in avoid:
                continue
            next_path = path + [neighbor]
            if neighbor == target:
                return next_path
            visited.add(neighbor)
            queue.append(next_path)
    return None


class NetworkPathTransport:
    """Transport that honours the "avoid the suspect" routing rule.

    The request (and its answer) must not go through the suspicious MPR or any
    node in ``colluders``.  Reachability is evaluated on the supplied
    connectivity oracle; when no alternative path exists the query fails
    (``None``), reproducing the E3 dead-end of the paper.  Each successful
    query can still be lost with ``loss_probability`` (unreliable channel).
    """

    def __init__(
        self,
        connectivity_oracle: Callable[[], Mapping[str, Sequence[str]]],
        responders: Mapping[str, object],
        colluders: Optional[Set[str]] = None,
        loss_probability: float = 0.0,
        rng: Optional[random.Random] = None,
        owner: str = "",
    ) -> None:
        self._connectivity_oracle = connectivity_oracle
        self._responders = dict(responders)
        self.colluders = set(colluders or set())
        self.loss_probability = loss_probability
        self.rng = rng or _transport_rng("network-path-transport", owner)

    def verify_link(self, requester: str, responder: str, suspect: str,
                    link_peer: Optional[str] = None) -> Optional[bool]:
        connectivity = self._connectivity_oracle()
        avoid = {suspect} | self.colluders
        avoid.discard(responder)
        path = path_avoiding(connectivity, requester, responder, avoid)
        if path is None:
            return None
        if self.loss_probability and self.rng.random() < self.loss_probability:
            return None
        target = self._responders.get(responder)
        if target is None:
            return None
        return _ask(target, suspect, requester, link_peer)
