"""Trust-weighted detection aggregate and decision rule (Eqs. 8–10).

The investigation collects second-hand evidences ``e^{S_i,I} ∈ {−1, 0, +1}``
from the 1-hop neighbours ``S_1 … S_m`` of the suspect ``I``.  The detection
aggregate weighs each answer with the trust the investigator places in the
answering node::

    Detect^{A,I} = Σ_i w_i · T^{A,S_i} · e^{S_i,I}      w_i = 1 / Σ_j T^{A,S_j}

An answer of +1 confirms the link advertised by ``I`` (no spoofing), −1 denies
it, and 0 records a missing answer (time-out).  A value of ``Detect`` close to
−1 indicates a link-spoofing attack.

The decision rule (Eq. 10) combines the aggregate with the confidence-interval
margin ``Ci`` and the decision threshold ``γ``::

    well-behaving   if  γ ≤ Detect − Ci ≤ 1
    intruder        if −1 ≤ Detect + Ci ≤ −γ
    unrecognized    otherwise  (collect more evidences)
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.trust.confidence import (
    ConfidenceInterval,
    confidence_interval,
    weighted_margin_of_error,
)


class DecisionOutcome(str, enum.Enum):
    """Ternary verdict of the decision rule."""

    WELL_BEHAVING = "well-behaving"
    INTRUDER = "intruder"
    UNRECOGNIZED = "unrecognized"

    def __str__(self) -> str:
        return self.value


#: Valid evidence values for an investigation answer.
ANSWER_CONFIRM = 1.0
ANSWER_DENY = -1.0
ANSWER_MISSING = 0.0


def detection_weights(trust_values: Sequence[float]) -> List[float]:
    """Weights ``w_i = 1 / Σ_j T^{A,S_j}`` of Eq. 8.

    When every responder has zero trust the weights are zero: worthless
    answers cannot move the aggregate.  A subnormal total gets the same
    treatment — ``1/total`` would overflow to ``inf`` and poison the
    aggregate with NaNs, and trust that small is indistinguishable from
    zero anyway.
    """
    total = sum(trust_values)
    if total <= 0.0:
        return [0.0 for _ in trust_values]
    weight = 1.0 / total
    if math.isinf(weight):
        return [0.0 for _ in trust_values]
    return [weight for _ in trust_values]


def aggregate_detection(
    answers: Mapping[str, float],
    trust: Mapping[str, float],
) -> float:
    """Equation 8: trust-weighted aggregation of the investigation answers.

    ``answers`` maps responder id → evidence value in ``{−1, 0, +1}`` and
    ``trust`` maps responder id → ``T^{A,S_i}``.  Responders without a trust
    entry contribute with zero weight.
    """
    responders = sorted(answers)
    trust_values = [max(0.0, trust.get(r, 0.0)) for r in responders]
    weights = detection_weights(trust_values)
    result = 0.0
    for responder, weight, trust_value in zip(responders, weights, trust_values):
        value = answers[responder]
        if not -1.0 <= value <= 1.0:
            raise ValueError(f"answer of {responder} out of range: {value}")
        result += weight * trust_value * value
    return max(-1.0, min(1.0, result))


def unweighted_vote(answers: Mapping[str, float]) -> float:
    """Plain mean of the answers (the ablation baseline without trust weighting)."""
    if not answers:
        return 0.0
    values = list(answers.values())
    return sum(values) / len(values)


@dataclass
class DetectionDecision:
    """Full outcome of one application of the decision rule."""

    suspect: str
    detect_value: float
    interval: ConfidenceInterval
    gamma: float
    outcome: DecisionOutcome
    answers: Dict[str, float] = field(default_factory=dict)
    trust_used: Dict[str, float] = field(default_factory=dict)

    @property
    def is_final(self) -> bool:
        """Whether the investigation can terminate (not "unrecognized")."""
        return self.outcome != DecisionOutcome.UNRECOGNIZED


def decide(
    detect_value: float,
    margin: float,
    gamma: float = 0.6,
) -> DecisionOutcome:
    """Equation 10: classify a suspect from the aggregate and the margin of error."""
    if not 0.0 < gamma <= 1.0:
        raise ValueError(f"gamma must be in (0, 1], got {gamma}")
    if gamma <= detect_value - margin <= 1.0:
        return DecisionOutcome.WELL_BEHAVING
    if -1.0 <= detect_value + margin <= -gamma:
        return DecisionOutcome.INTRUDER
    return DecisionOutcome.UNRECOGNIZED


def evaluate_investigation(
    suspect: str,
    answers: Mapping[str, float],
    trust: Mapping[str, float],
    gamma: float = 0.6,
    confidence_level: float = 0.95,
    use_trust_weighting: bool = True,
) -> DetectionDecision:
    """Run Eq. 8 + Eq. 9 + Eq. 10 on one round of investigation answers.

    ``use_trust_weighting=False`` switches to the unweighted vote, which is
    the ablation configuration used to quantify the benefit of the trust
    system.
    """
    responders = sorted(answers)
    samples = [answers[r] for r in responders]
    if use_trust_weighting:
        detect_value = aggregate_detection(answers, trust)
        # The interval is trust-weighted as well: answers coming from nodes
        # whose trust has collapsed should not keep the interval wide forever.
        weights = [max(0.0, trust.get(r, 0.0)) for r in responders]
        interval = ConfidenceInterval(
            center=detect_value,
            margin=weighted_margin_of_error(samples, weights, confidence_level),
            confidence_level=confidence_level,
            sample_size=len(samples),
        )
    else:
        detect_value = unweighted_vote(answers)
        interval = confidence_interval(samples, center=detect_value,
                                       confidence_level=confidence_level)
    outcome = decide(detect_value, interval.margin, gamma=gamma)
    return DetectionDecision(
        suspect=suspect,
        detect_value=detect_value,
        interval=interval,
        gamma=gamma,
        outcome=outcome,
        answers=dict(answers),
        trust_used={k: trust.get(k, 0.0) for k in answers},
    )
