"""Detector node: the full per-node stack of the paper.

A :class:`DetectorNode` bundles, for one network node:

* a routing substrate producing audit logs — any registered
  :class:`repro.routing.base.RoutingProtocol` backend (OLSR by default,
  selected with the ``protocol`` argument),
* the log analyzer and :class:`repro.core.detector.LocalDetector`,
* the :class:`repro.trust.manager.TrustManager` and recommendation store, and
* a :class:`repro.core.investigation.CooperativeInvestigator`.

It also implements the *responder* side of the protocol
(:meth:`answer_link_query`), where a liar behaviour can be installed by the
attack modules to make the node provide falsified answers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Set

from repro.core.decision import DetectionDecision
from repro.core.detector import InvestigationTrigger, LocalDetector
from repro.core.investigation import (
    CooperativeInvestigator,
    NetworkPathTransport,
    QueryTransport,
    RoundResult,
    common_two_hop_neighbors,
)
from repro.logs.analyzer import LogAnalyzer
from repro.olsr.node import OlsrConfig
from repro.routing.registry import create_protocol
from repro.trust.manager import TrustManager, TrustParameters
from repro.trust.recommendation import RecommendationManager
from repro.seeding import stable_digest

AnswerMutator = Callable[[str, str, bool], Optional[bool]]


@dataclass
class DetectionConfig:
    """Parameters of the detection / decision pipeline."""

    gamma: float = 0.6
    confidence_level: float = 0.95
    use_trust_weighting: bool = True
    close_on_decision: bool = False
    query_loss_probability: float = 0.0


class DetectorNode:
    """One node running a routing protocol plus the trust-enabled misbehaviour detector."""

    def __init__(
        self,
        node_id: str,
        network,
        olsr_config: Optional[OlsrConfig] = None,
        trust_parameters: Optional[TrustParameters] = None,
        detection_config: Optional[DetectionConfig] = None,
        seed: Optional[int] = None,
        protocol: str = "olsr",
        routing_config: Optional[object] = None,
    ) -> None:
        self.node_id = node_id
        self.network = network
        self.protocol = protocol
        self.detection_config = detection_config or DetectionConfig()
        self.rng = random.Random(seed if seed is not None else stable_digest(node_id) & 0xFFFF)

        config = routing_config if routing_config is not None else olsr_config
        self.router = create_protocol(protocol, node_id, network, config=config,
                                      seed=self.rng.randint(0, 2 ** 31))
        #: Backwards-compatible alias: the routing substrate, whatever the
        #: protocol (historical name from the OLSR-only days).
        self.olsr = self.router
        self.log = self.router.log
        self.analyzer = LogAnalyzer(self.log)
        self.detector = LocalDetector(
            self.analyzer,
            sole_provider_oracle=self._sole_provider_oracle,
        )
        self.trust = TrustManager(node_id, trust_parameters)
        self.recommendations = RecommendationManager(node_id)
        self.investigator: Optional[CooperativeInvestigator] = None
        self._transport: Optional[QueryTransport] = None

        #: Liar hooks installed by attack modules: called with
        #: (suspect, requester, honest_answer) and may return a falsified one.
        self.answer_mutators: List[AnswerMutator] = []
        #: History of every decision taken, for metrics and reports.
        self.decision_history: List[DetectionDecision] = []

    # ----------------------------------------------------------------- wiring
    def start(self) -> None:
        """Start the underlying routing protocol."""
        self.router.start()

    def bind_transport(self, transport: QueryTransport) -> None:
        """Install the query transport and build the investigator on top of it."""
        self._transport = transport
        self.investigator = CooperativeInvestigator(
            owner=self.node_id,
            transport=transport,
            trust_manager=self.trust,
            recommendation_manager=self.recommendations,
            gamma=self.detection_config.gamma,
            confidence_level=self.detection_config.confidence_level,
            use_trust_weighting=self.detection_config.use_trust_weighting,
            close_on_decision=self.detection_config.close_on_decision,
        )

    def bind_default_transport(self, peers: Mapping[str, "DetectorNode"],
                               colluders: Optional[Set[str]] = None) -> None:
        """Build the network-aware transport that avoids the suspect.

        ``peers`` maps node id → :class:`DetectorNode` for every node able to
        answer link-verification queries.
        """
        transport = NetworkPathTransport(
            connectivity_oracle=self.network.medium.connectivity_matrix,
            responders=peers,
            colluders=colluders,
            loss_probability=self.detection_config.query_loss_probability,
            rng=self.rng,
            owner=self.node_id,
        )
        self.bind_transport(transport)

    # --------------------------------------------------------------- responder
    def answer_link_query(self, suspect: str, requester: str,
                          link_peer: Optional[str] = None) -> Optional[bool]:
        """Answer a link-verification request.

        ``link_peer=None`` (or the node's own id) asks "is ``suspect`` your
        symmetric neighbour?"; an explicit ``link_peer`` asks about the
        contested link ``suspect — link_peer``, which this node can verify
        only when ``link_peer`` is one of its symmetric neighbours (it then
        checks whether ``link_peer``'s recent HELLOs advertise the suspect
        back).  Well-behaving nodes answer truthfully from their OLSR state; a
        liar behaviour installed through ``answer_mutators`` may falsify the
        answer (or suppress it by returning ``None``).
        """
        if link_peer is None or link_peer == self.node_id:
            honest: Optional[bool] = self.router.local_topology_answer(suspect)
        elif link_peer in self.router.symmetric_neighbors():
            # What did link_peer itself advertise lately?  Link-state
            # protocols track their neighbours' advertisements (OLSR: the
            # 2-hop set); protocols without that state answer None.
            honest = self.router.peer_advertises(link_peer, suspect)
        else:
            honest = None  # no knowledge about that link
        answer: Optional[bool] = honest
        for mutator in self.answer_mutators:
            answer = mutator(suspect, requester, honest)
        return answer

    # --------------------------------------------------------------- detection
    def _sole_provider_oracle(self, suspect: str) -> Set[str]:
        """E3 check: nodes for which ``suspect`` is the only connectivity provider."""
        isolated: Set[str] = set()
        for two_hop in self.router.coverage_of(suspect):
            providers = self.router.providers_of(two_hop)
            if providers == {suspect}:
                isolated.add(two_hop)
        return isolated

    def scan_logs(self) -> List[InvestigationTrigger]:
        """Run the local log analysis and return the new investigation triggers."""
        return self.detector.scan(now=self.router.now)

    def open_investigations_from_triggers(
        self, triggers: List[InvestigationTrigger]
    ) -> List[str]:
        """Open an investigation for every trigger; returns the suspects."""
        if self.investigator is None:
            raise RuntimeError("no transport bound: call bind_transport() first")
        suspects = []
        for trigger in triggers:
            responders = common_two_hop_neighbors(
                coverage_of=self.router.coverage_of,
                suspicious_mpr=trigger.suspect,
                replaced_mprs=trigger.replaced_mprs,
                exclude={self.node_id},
            )
            # The endpoints of the contested links are first-class witnesses.
            responders |= {
                peer for peer in trigger.contested_links
                if peer not in (self.node_id, trigger.suspect)
            }
            self.investigator.open_investigation(
                trigger.suspect,
                sorted(responders),
                contested_links=trigger.contested_links,
            )
            suspects.append(trigger.suspect)
        return suspects

    def run_investigation_round(self, suspect: str) -> RoundResult:
        """Run one round of the cooperative investigation about ``suspect``."""
        if self.investigator is None:
            raise RuntimeError("no transport bound: call bind_transport() first")
        result = self.investigator.run_round(suspect, now=self.router.now)
        self.decision_history.append(result.decision)
        return result

    def detection_round(self) -> List[RoundResult]:
        """One full detection cycle: scan logs, open/refresh investigations,
        run a round of every open investigation."""
        triggers = self.scan_logs()
        self.open_investigations_from_triggers(triggers)
        results: List[RoundResult] = []
        if self.investigator is None:
            return results
        for suspect in self.investigator.open_investigations():
            results.append(self.run_investigation_round(suspect))
        return results

    # ------------------------------------------------------------------ views
    def trust_table(self) -> Dict[str, float]:
        """Current direct trust of every known node."""
        return self.trust.as_dict()

    def describe(self) -> Dict[str, object]:
        """Summary of the node's detection state."""
        open_suspects = self.investigator.open_investigations() if self.investigator else []
        return {
            "node": self.node_id,
            "protocol": self.protocol,
            "olsr": self.router.describe(),
            "trust": self.trust_table(),
            "open_investigations": open_suspects,
            "decisions": len(self.decision_history),
        }
