"""Paper contribution: log/signature-based detection secured by trust.

* :mod:`repro.core.evidence` — detection evidences E1–E5.
* :mod:`repro.core.signatures` — attack signatures and the three link
  spoofing expressions.
* :mod:`repro.core.detector` — local, log-based detector producing
  investigation triggers.
* :mod:`repro.core.investigation` — cooperative investigation (Algorithm 1)
  and query transports.
* :mod:`repro.core.decision` — trust-weighted detection aggregate (Eq. 8) and
  the three-way decision rule (Eq. 10).
* :mod:`repro.core.detector_node` — per-node facade composing the whole
  stack on top of an OLSR node.
"""

from repro.core.decision import (
    ANSWER_CONFIRM,
    ANSWER_DENY,
    ANSWER_MISSING,
    DecisionOutcome,
    DetectionDecision,
    aggregate_detection,
    decide,
    detection_weights,
    evaluate_investigation,
    unweighted_vote,
)
from repro.core.detector import InvestigationTrigger, LocalDetector
from repro.core.detector_node import DetectionConfig, DetectorNode
from repro.core.evidence import (
    DetectionEvidence,
    EvidenceType,
    SuspicionLevel,
    e1,
    e2,
    e3,
    e4,
    e5,
)
from repro.core.offline import (
    OfflineAnalysisReport,
    analyze_log_store,
    analyze_log_text,
)
from repro.core.investigation import (
    CallableTransport,
    CooperativeInvestigator,
    InvestigationState,
    NetworkPathTransport,
    OracleTransport,
    RoundResult,
    common_two_hop_neighbors,
    path_avoiding,
)
from repro.core.signatures import (
    EventPattern,
    LinkSpoofingVariant,
    Signature,
    SignatureMatch,
    SignatureMatcher,
    SpoofingIndicator,
    evaluate_expression_1,
    evaluate_expression_2,
    evaluate_expression_3,
    evaluate_link_spoofing,
    link_spoofing_event_signature,
)

__all__ = [
    "ANSWER_CONFIRM",
    "ANSWER_DENY",
    "ANSWER_MISSING",
    "CallableTransport",
    "CooperativeInvestigator",
    "DecisionOutcome",
    "DetectionConfig",
    "DetectionDecision",
    "DetectionEvidence",
    "DetectorNode",
    "EventPattern",
    "EvidenceType",
    "InvestigationState",
    "InvestigationTrigger",
    "LinkSpoofingVariant",
    "LocalDetector",
    "NetworkPathTransport",
    "OfflineAnalysisReport",
    "OracleTransport",
    "RoundResult",
    "Signature",
    "SignatureMatch",
    "SignatureMatcher",
    "SpoofingIndicator",
    "SuspicionLevel",
    "aggregate_detection",
    "analyze_log_store",
    "analyze_log_text",
    "common_two_hop_neighbors",
    "decide",
    "detection_weights",
    "e1",
    "e2",
    "e3",
    "e4",
    "e5",
    "evaluate_expression_1",
    "evaluate_expression_2",
    "evaluate_expression_3",
    "evaluate_investigation",
    "evaluate_link_spoofing",
    "link_spoofing_event_signature",
    "path_avoiding",
    "unweighted_vote",
]
