"""Local (log-based) detector.

The local detector is the per-node front end of the IDS: it periodically
analyses the node's own audit logs (through
:class:`repro.logs.analyzer.LogAnalyzer`), matches the extracted events
against the attack signatures, derives the detection evidences E1–E3 and
decides whether a cooperative investigation must be launched and against
whom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.core.evidence import (
    DetectionEvidence,
    EvidenceType,
    SuspicionLevel,
    e1,
    e2,
    e3,
)
from repro.core.signatures import (
    Signature,
    SignatureMatcher,
    link_spoofing_event_signature,
)
from repro.logs.analyzer import DetectionEvent, DetectionEventType, LogAnalyzer


@dataclass
class InvestigationTrigger:
    """A request to open a cooperative investigation about ``suspect``."""

    suspect: str
    observer: str
    time: float
    evidences: List[DetectionEvidence] = field(default_factory=list)
    replaced_mprs: List[str] = field(default_factory=list)
    #: Specific advertised links considered suspicious (the newly *added*
    #: neighbours of an MPR's advertisement); used to focus the verification.
    contested_links: List[str] = field(default_factory=list)

    @property
    def strongest_level(self) -> SuspicionLevel:
        """Highest criticality among the collected evidences."""
        if not self.evidences:
            return SuspicionLevel.INFORMATIONAL
        return max((evidence.level for evidence in self.evidences), key=int)


class LocalDetector:
    """Turns audit-log events into investigation triggers.

    Parameters
    ----------
    analyzer:
        The log analyzer bound to the node's own :class:`LogStore`.
    sole_provider_oracle:
        Optional callable ``suspect -> set of nodes for which the suspect is
        the only connectivity provider`` — the E3 check.  The OLSR node
        provides it from its 2-hop set; the lightweight experiment harness
        can omit it.
    signatures:
        Signature library; defaults to the link-spoofing preliminary
        signature.
    min_trigger_level:
        Events below this criticality never start an investigation (the
        paper's "minimise the number of investigations" goal).
    mpr_advertisement_change_is_e2:
        Treat a change in the links advertised by a node that is *currently
        one of our MPRs* as an E2-style misbehaviour hint.  This covers the
        common case where the intruder is already an MPR when it starts
        spoofing, so no MPR replacement (E1) is ever observed.
    """

    def __init__(
        self,
        analyzer: LogAnalyzer,
        sole_provider_oracle: Optional[Callable[[str], Set[str]]] = None,
        signatures: Optional[Sequence[Signature]] = None,
        min_trigger_level: SuspicionLevel = SuspicionLevel.SUSPICIOUS,
        mpr_advertisement_change_is_e2: bool = True,
    ) -> None:
        self.analyzer = analyzer
        self.node_id = analyzer.node_id
        self.sole_provider_oracle = sole_provider_oracle
        self.matcher = SignatureMatcher(list(signatures) if signatures else [link_spoofing_event_signature()])
        self.min_trigger_level = min_trigger_level
        self.mpr_advertisement_change_is_e2 = mpr_advertisement_change_is_e2
        self.pending_events: List[DetectionEvent] = []
        self.evidence_log: List[DetectionEvidence] = []

    # ------------------------------------------------------------------ scan
    def scan(self, now: Optional[float] = None) -> List[InvestigationTrigger]:
        """Analyse the new log records and return the investigation triggers."""
        events = self.analyzer.analyze()
        self.pending_events.extend(events)
        triggers: Dict[str, InvestigationTrigger] = {}
        for event in events:
            time = now if now is not None else event.time
            if event.event_type == DetectionEventType.MPR_REPLACED:
                replacing_candidates = [s for s in event.subject.split(",") if s]
                replaced = event.details.get("replaced", "")
                for suspect in replacing_candidates:
                    trigger = triggers.setdefault(
                        suspect,
                        InvestigationTrigger(suspect=suspect, observer=self.node_id, time=time),
                    )
                    evidence = e1(self.node_id, suspect, time, replaced=replaced)
                    trigger.evidences.append(evidence)
                    self.evidence_log.append(evidence)
                    if replaced and replaced not in trigger.replaced_mprs:
                        trigger.replaced_mprs.append(replaced)
            elif event.event_type == DetectionEventType.MPR_MISBEHAVIOR:
                suspect = event.subject
                trigger = triggers.setdefault(
                    suspect,
                    InvestigationTrigger(suspect=suspect, observer=self.node_id, time=time),
                )
                evidence = e2(self.node_id, suspect, time,
                              reason=event.details.get("reason", "misbehavior"))
                trigger.evidences.append(evidence)
                self.evidence_log.append(evidence)
            elif (
                event.event_type == DetectionEventType.ADVERTISEMENT_CHANGED
                and self.mpr_advertisement_change_is_e2
                and event.subject in self.analyzer.current_mprs
                and event.details.get("added")
            ):
                suspect = event.subject
                trigger = triggers.setdefault(
                    suspect,
                    InvestigationTrigger(suspect=suspect, observer=self.node_id, time=time),
                )
                evidence = e2(self.node_id, suspect, time,
                              reason="mpr_advertisement_change")
                trigger.evidences.append(evidence)
                self.evidence_log.append(evidence)
                added = [a for a in event.details.get("added", "").split(",") if a]
                for address in added:
                    if address in (self.node_id, suspect):
                        continue
                    if address not in trigger.contested_links:
                        trigger.contested_links.append(address)

        # Enrich triggers with the optional E3 evidence.
        for suspect, trigger in triggers.items():
            self._attach_e3(trigger)

        return [
            trigger
            for trigger in triggers.values()
            if int(trigger.strongest_level) >= int(self.min_trigger_level)
        ]

    def _attach_e3(self, trigger: InvestigationTrigger) -> None:
        if self.sole_provider_oracle is None:
            return
        isolated = self.sole_provider_oracle(trigger.suspect)
        for node in sorted(isolated):
            evidence = e3(self.node_id, trigger.suspect, trigger.time, isolated_node=node)
            trigger.evidences.append(evidence)
            self.evidence_log.append(evidence)

    # -------------------------------------------------------------- signature
    def match_signatures(self) -> List[str]:
        """Names of the signatures fully matched by the accumulated events."""
        matches = self.matcher.complete_matches(self.pending_events)
        return [m.signature_name for m in matches]

    def evidence_about(self, suspect: str) -> List[DetectionEvidence]:
        """Every evidence collected so far about ``suspect``."""
        return [evidence for evidence in self.evidence_log if evidence.suspect == suspect]

    def has_triggering_evidence(self, suspect: str) -> bool:
        """Whether E1 or E2 has been observed about ``suspect``."""
        return any(
            evidence.triggers_investigation for evidence in self.evidence_about(suspect)
        )

    def reset(self) -> None:
        """Forget accumulated events and evidences (keeps the analyzer state)."""
        self.pending_events.clear()
        self.evidence_log.clear()
