"""Detection evidences E1–E5 (Section III-B of the paper).

The detection of a link-spoofing attack relies on five classes of evidence:

* **E1** — an MPR has been replaced (a change in the covering of 1-hop
  neighbours caused the replacement).
* **E2** — a previously selected MPR is observed misbehaving (dropping,
  forging or mis-relaying messages).
* **E3** — an MPR is the only node providing connectivity to some node(s);
  suspicious but not sufficient to start an investigation on its own.
* **E4** — an MPR does not cover its adjacent neighbour(s): a neighbour
  denies the link the MPR advertises.
* **E5** — an MPR provides connectivity to a non-neighbour: it advertises a
  node that is not actually adjacent.

E1/E2 (optionally strengthened by E3) start an investigation; E4/E5 are what
the cooperative investigation establishes, and decide whether the suspicious
MPR is an intruder (Expression 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class EvidenceType(str, enum.Enum):
    """The five evidences of the link-spoofing detection strategy."""

    E1_MPR_REPLACED = "E1"
    E2_MPR_MISBEHAVIOR = "E2"
    E3_SOLE_PROVIDER = "E3"
    E4_NEIGHBOR_NOT_COVERED = "E4"
    E5_NON_NEIGHBOR_ADVERTISED = "E5"

    def __str__(self) -> str:
        return self.value


class SuspicionLevel(int, enum.Enum):
    """Criticality attached to an evidence, driving whether to investigate.

    The paper categorises events by level of criticality so that only the
    relevant ones trigger a (costly) distributed investigation.
    """

    INFORMATIONAL = 0
    SUSPICIOUS = 1
    CRITICAL = 2


#: Default criticality per evidence type.
DEFAULT_SUSPICION = {
    EvidenceType.E1_MPR_REPLACED: SuspicionLevel.SUSPICIOUS,
    EvidenceType.E2_MPR_MISBEHAVIOR: SuspicionLevel.CRITICAL,
    EvidenceType.E3_SOLE_PROVIDER: SuspicionLevel.INFORMATIONAL,
    EvidenceType.E4_NEIGHBOR_NOT_COVERED: SuspicionLevel.CRITICAL,
    EvidenceType.E5_NON_NEIGHBOR_ADVERTISED: SuspicionLevel.CRITICAL,
}

#: Evidences able to *start* an investigation (Expression 4 left column).
TRIGGERING_EVIDENCE = {EvidenceType.E1_MPR_REPLACED, EvidenceType.E2_MPR_MISBEHAVIOR}

#: Evidences established *by* the cooperative investigation.
CONFIRMING_EVIDENCE = {
    EvidenceType.E4_NEIGHBOR_NOT_COVERED,
    EvidenceType.E5_NON_NEIGHBOR_ADVERTISED,
}


@dataclass(frozen=True)
class DetectionEvidence:
    """One evidence about a suspicious MPR."""

    evidence_type: EvidenceType
    observer: str
    suspect: str
    time: float
    suspicion: Optional[SuspicionLevel] = None
    firsthand: bool = True
    details: Dict[str, str] = field(default_factory=dict, hash=False, compare=False)

    @property
    def level(self) -> SuspicionLevel:
        """Criticality level (explicit value or the per-type default)."""
        if self.suspicion is not None:
            return self.suspicion
        return DEFAULT_SUSPICION[self.evidence_type]

    @property
    def triggers_investigation(self) -> bool:
        """Whether this evidence alone can start a cooperative investigation."""
        return self.evidence_type in TRIGGERING_EVIDENCE

    @property
    def confirms_attack(self) -> bool:
        """Whether this evidence, once agreed upon, confirms the attack."""
        return self.evidence_type in CONFIRMING_EVIDENCE


def e1(observer: str, suspect: str, time: float, replaced: str) -> DetectionEvidence:
    """Build an E1 evidence: ``suspect`` replaced ``replaced`` as MPR of ``observer``."""
    return DetectionEvidence(
        evidence_type=EvidenceType.E1_MPR_REPLACED,
        observer=observer,
        suspect=suspect,
        time=time,
        details={"replaced": replaced},
    )


def e2(observer: str, suspect: str, time: float, reason: str) -> DetectionEvidence:
    """Build an E2 evidence: the MPR ``suspect`` was seen misbehaving."""
    return DetectionEvidence(
        evidence_type=EvidenceType.E2_MPR_MISBEHAVIOR,
        observer=observer,
        suspect=suspect,
        time=time,
        details={"reason": reason},
    )


def e3(observer: str, suspect: str, time: float, isolated_node: str) -> DetectionEvidence:
    """Build an E3 evidence: ``suspect`` is the sole provider of ``isolated_node``."""
    return DetectionEvidence(
        evidence_type=EvidenceType.E3_SOLE_PROVIDER,
        observer=observer,
        suspect=suspect,
        time=time,
        details={"isolated_node": isolated_node},
    )


def e4(observer: str, suspect: str, time: float, denied_by: str,
       firsthand: bool = False) -> DetectionEvidence:
    """Build an E4 evidence: ``denied_by`` denies being covered by ``suspect``."""
    return DetectionEvidence(
        evidence_type=EvidenceType.E4_NEIGHBOR_NOT_COVERED,
        observer=observer,
        suspect=suspect,
        time=time,
        firsthand=firsthand,
        details={"denied_by": denied_by},
    )


def e5(observer: str, suspect: str, time: float, advertised: str,
       firsthand: bool = False) -> DetectionEvidence:
    """Build an E5 evidence: ``suspect`` advertises the distant node ``advertised``."""
    return DetectionEvidence(
        evidence_type=EvidenceType.E5_NON_NEIGHBOR_ADVERTISED,
        observer=observer,
        suspect=suspect,
        time=time,
        firsthand=firsthand,
        details={"advertised": advertised},
    )
