"""Offline (forensic) analysis of captured OLSR audit logs.

Because the detector is log-based, the same analysis that runs online on a
node can be replayed *offline* over a captured log file — e.g. for forensic
investigation after an incident, or to test detection rules against archived
traces.  This module wires the existing pieces (parser → analyzer → local
detector → signature matcher) into a one-call pipeline that consumes the raw
text of an audit log and produces a structured report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.detector import InvestigationTrigger, LocalDetector
from repro.core.evidence import DetectionEvidence
from repro.core.signatures import Signature
from repro.logs.analyzer import DetectionEvent, LogAnalyzer
from repro.logs.store import LogStore


@dataclass
class OfflineAnalysisReport:
    """Outcome of replaying a captured audit log through the detector."""

    node_id: str
    records_parsed: int
    events: List[DetectionEvent] = field(default_factory=list)
    triggers: List[InvestigationTrigger] = field(default_factory=list)
    matched_signatures: List[str] = field(default_factory=list)
    evidences: List[DetectionEvidence] = field(default_factory=list)

    @property
    def suspects(self) -> List[str]:
        """Every node an investigation would have been opened against."""
        return sorted({trigger.suspect for trigger in self.triggers})

    def evidence_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-suspect histogram of evidence types."""
        summary: Dict[str, Dict[str, int]] = {}
        for evidence in self.evidences:
            per_suspect = summary.setdefault(evidence.suspect, {})
            key = str(evidence.evidence_type)
            per_suspect[key] = per_suspect.get(key, 0) + 1
        return summary

    def as_rows(self) -> List[Dict[str, object]]:
        """One row per suspect, for tabular output."""
        summary = self.evidence_summary()
        rows = []
        for suspect in self.suspects:
            per_type = summary.get(suspect, {})
            rows.append({
                "suspect": suspect,
                "evidence_count": sum(per_type.values()),
                "evidence_types": ",".join(sorted(per_type)),
                "investigation_needed": True,
            })
        return rows


def analyze_log_store(
    store: LogStore,
    signatures: Optional[List[Signature]] = None,
    mpr_advertisement_change_is_e2: bool = True,
) -> OfflineAnalysisReport:
    """Replay an in-memory :class:`LogStore` through the detection pipeline."""
    analyzer = LogAnalyzer(store)
    detector = LocalDetector(
        analyzer,
        signatures=signatures,
        mpr_advertisement_change_is_e2=mpr_advertisement_change_is_e2,
    )
    triggers = detector.scan()
    report = OfflineAnalysisReport(
        node_id=store.node_id,
        records_parsed=len(store),
        events=list(detector.pending_events),
        triggers=triggers,
        matched_signatures=detector.match_signatures(),
        evidences=list(detector.evidence_log),
    )
    return report


def analyze_log_text(
    node_id: str,
    text: str,
    signatures: Optional[List[Signature]] = None,
    skip_malformed_lines: bool = True,
) -> OfflineAnalysisReport:
    """Replay a textual audit-log dump through the detection pipeline.

    ``text`` is the content of a log file produced by
    :meth:`repro.logs.store.LogStore.dump_text` (or by a real node emitting
    the same olsrd-like format).  Malformed lines are skipped by default so a
    partially corrupted capture can still be analysed.
    """
    from repro.logs.parser import parse_lines

    store = LogStore(node_id)
    store.extend(parse_lines(text.splitlines(), skip_errors=skip_malformed_lines))
    return analyze_log_store(store, signatures=signatures)
