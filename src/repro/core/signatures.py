"""Attack signatures.

A signature is a partially ordered sequence of events that characterises a
misbehaving activity (Section III of the paper).  This module provides:

* the generic signature machinery (:class:`EventPattern`, :class:`Signature`,
  :class:`SignatureMatcher`) that matches sequences of
  :class:`repro.logs.analyzer.DetectionEvent` against signatures, possibly
  partially; and
* the *link spoofing* signature expressions (Expressions 1–3) evaluated on a
  node's local view of the topology plus the HELLO advertisement of the
  suspect.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.logs.analyzer import DetectionEvent, DetectionEventType


# ---------------------------------------------------------------------------
# Generic signature machinery
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EventPattern:
    """One step of a signature: a named predicate over detection events."""

    name: str
    predicate: Callable[[DetectionEvent], bool] = field(compare=False, hash=False)
    optional: bool = False

    def matches(self, event: DetectionEvent) -> bool:
        """Whether ``event`` satisfies this step."""
        return self.predicate(event)


@dataclass
class SignatureMatch:
    """Result of matching a signature against a sequence of events."""

    signature_name: str
    matched_steps: List[str] = field(default_factory=list)
    missing_steps: List[str] = field(default_factory=list)
    matched_events: List[DetectionEvent] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Whether every mandatory step was matched."""
        return not self.missing_steps

    @property
    def completion_ratio(self) -> float:
        """Fraction of mandatory steps matched (1.0 for a complete match)."""
        total = len(self.matched_steps) + len(self.missing_steps)
        if total == 0:
            return 0.0
        return len(self.matched_steps) / total


@dataclass
class Signature:
    """A partially ordered sequence of :class:`EventPattern` steps.

    Steps must be matched in order, but events irrelevant to the signature may
    be interleaved freely; optional steps never block a match.
    """

    name: str
    steps: List[EventPattern] = field(default_factory=list)
    description: str = ""

    def match(self, events: Sequence[DetectionEvent]) -> SignatureMatch:
        """Match the signature against ``events`` (ordered by time)."""
        result = SignatureMatch(signature_name=self.name)
        position = 0
        for step in self.steps:
            found = None
            for index in range(position, len(events)):
                if step.matches(events[index]):
                    found = index
                    break
            if found is not None:
                result.matched_steps.append(step.name)
                result.matched_events.append(events[found])
                position = found + 1
            elif step.optional:
                continue
            else:
                result.missing_steps.append(step.name)
        return result


class SignatureMatcher:
    """Matches a library of signatures against an event stream."""

    def __init__(self, signatures: Optional[List[Signature]] = None) -> None:
        self.signatures: List[Signature] = list(signatures or [])

    def add(self, signature: Signature) -> None:
        """Register an additional signature."""
        self.signatures.append(signature)

    def match_all(self, events: Sequence[DetectionEvent]) -> List[SignatureMatch]:
        """Match every registered signature; returns one result per signature."""
        ordered = sorted(events, key=lambda e: e.time)
        return [signature.match(ordered) for signature in self.signatures]

    def complete_matches(self, events: Sequence[DetectionEvent]) -> List[SignatureMatch]:
        """Only the signatures whose mandatory steps all matched."""
        return [m for m in self.match_all(events) if m.complete]


def _is_type(event_type: DetectionEventType) -> Callable[[DetectionEvent], bool]:
    return lambda event: event.event_type == event_type


def link_spoofing_event_signature() -> Signature:
    """The event-level part of the link-spoofing signature.

    An MPR replacement (or a misbehaviour observation about an MPR), possibly
    preceded by advertisement changes, is the preliminary sign that triggers
    the cooperative investigation (Expression 4, left-hand column).
    """
    return Signature(
        name="link-spoofing-preliminary",
        description="Preliminary sign of a link spoofing attack (E1/E2 trigger)",
        steps=[
            EventPattern(
                name="advertisement-change",
                predicate=_is_type(DetectionEventType.ADVERTISEMENT_CHANGED),
                optional=True,
            ),
            EventPattern(
                name="mpr-replaced-or-misbehaving",
                predicate=lambda e: e.event_type
                in (DetectionEventType.MPR_REPLACED, DetectionEventType.MPR_MISBEHAVIOR),
            ),
        ],
    )


def broadcast_storm_signature(threshold: int = 20) -> Signature:
    """Signature of a (broadcast) storm: a burst of advertisement changes.

    Kept simple on purpose — storms are not the focus of the paper but the
    matcher must accommodate several signatures simultaneously.
    """
    counter = {"count": 0}

    def is_burst(event: DetectionEvent) -> bool:
        if event.event_type != DetectionEventType.ADVERTISEMENT_CHANGED:
            return False
        counter["count"] += 1
        return counter["count"] >= threshold

    return Signature(
        name="broadcast-storm",
        description="Unusual burst of advertisement changes from one originator",
        steps=[EventPattern(name="advertisement-burst", predicate=is_burst)],
    )


# ---------------------------------------------------------------------------
# Link-spoofing signature expressions (Expressions 1–3)
# ---------------------------------------------------------------------------
class LinkSpoofingVariant(str, enum.Enum):
    """The three falsification options available to a link-spoofing intruder."""

    NON_EXISTENT_NEIGHBOR = "non_existent_neighbor"      # Expression 1
    FALSE_EXISTING_LINK = "false_existing_link"          # Expression 2
    OMITTED_NEIGHBOR = "omitted_neighbor"                # Expression 3

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SpoofingIndicator:
    """Outcome of evaluating the spoofing expressions on one advertisement."""

    variant: LinkSpoofingVariant
    suspect: str
    offending_addresses: frozenset

    def describe(self) -> str:
        """One-line human-readable description."""
        nodes = ",".join(sorted(self.offending_addresses))
        return f"{self.suspect} [{self.variant}]: {nodes}"


def evaluate_expression_1(
    suspect: str,
    advertised_symmetric: Set[str],
    known_network_nodes: Set[str],
) -> Optional[SpoofingIndicator]:
    """Expression 1: the suspect declares at least one *non-existing* node.

    ``∃ N ∈ NS'_I  such that  N ∉ 𝒩`` — advertising a node that does not exist
    in the OLSR network guarantees that a misbehaving node is selected as MPR
    because no well-behaving MPR can claim to cover that phantom node.
    """
    phantom = {a for a in advertised_symmetric if a not in known_network_nodes and a != suspect}
    if not phantom:
        return None
    return SpoofingIndicator(
        variant=LinkSpoofingVariant.NON_EXISTENT_NEIGHBOR,
        suspect=suspect,
        offending_addresses=frozenset(phantom),
    )


def evaluate_expression_2(
    suspect: str,
    advertised_symmetric: Set[str],
    actual_neighbors_of_suspect: Set[str],
    known_network_nodes: Set[str],
) -> Optional[SpoofingIndicator]:
    """Expression 2: the suspect claims an existing node as symmetric neighbour
    although it is not (``∃ X ∈ NS'_I ∩ 𝒩  such that  X ∉ NS_I``).

    This is the blackhole-provisioning variant: the intruder artificially
    increases its connectivity so traffic is routed through it.
    """
    false_links = {
        a
        for a in advertised_symmetric
        if a in known_network_nodes and a not in actual_neighbors_of_suspect and a != suspect
    }
    if not false_links:
        return None
    return SpoofingIndicator(
        variant=LinkSpoofingVariant.FALSE_EXISTING_LINK,
        suspect=suspect,
        offending_addresses=frozenset(false_links),
    )


def evaluate_expression_3(
    suspect: str,
    advertised_symmetric: Set[str],
    actual_neighbors_of_suspect: Set[str],
) -> Optional[SpoofingIndicator]:
    """Expression 3: the suspect omits an existing symmetric neighbour
    (``∃ P ∈ NS_I  such that  P ∉ NS'_I``), artificially decreasing the
    connectivity of both nodes.
    """
    omitted = {a for a in actual_neighbors_of_suspect if a not in advertised_symmetric}
    if not omitted:
        return None
    return SpoofingIndicator(
        variant=LinkSpoofingVariant.OMITTED_NEIGHBOR,
        suspect=suspect,
        offending_addresses=frozenset(omitted),
    )


def evaluate_link_spoofing(
    suspect: str,
    advertised_symmetric: Set[str],
    actual_neighbors_of_suspect: Optional[Set[str]] = None,
    known_network_nodes: Optional[Set[str]] = None,
) -> List[SpoofingIndicator]:
    """Evaluate every applicable spoofing expression.

    ``actual_neighbors_of_suspect`` is ground truth only available through the
    cooperative investigation (or to an omniscient test); when it is ``None``
    only Expression 1 (which needs the set of known network nodes) can be
    evaluated.
    """
    indicators: List[SpoofingIndicator] = []
    if known_network_nodes is not None:
        indicator = evaluate_expression_1(suspect, advertised_symmetric, known_network_nodes)
        if indicator:
            indicators.append(indicator)
    if actual_neighbors_of_suspect is not None:
        if known_network_nodes is not None:
            indicator = evaluate_expression_2(
                suspect, advertised_symmetric, actual_neighbors_of_suspect, known_network_nodes
            )
            if indicator:
                indicators.append(indicator)
        indicator = evaluate_expression_3(
            suspect, advertised_symmetric, actual_neighbors_of_suspect
        )
        if indicator:
            indicators.append(indicator)
    return indicators
